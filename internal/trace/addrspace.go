package trace

import "fmt"

// AddressSpace hands out non-overlapping byte ranges for the instrumented
// workloads' shared data structures. Addresses are virtual identities only;
// no real memory is reserved.
type AddressSpace struct {
	next    uint64
	regions []Region
}

// Region is a named allocated address range [Base, Base+Size).
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// NewAddressSpace returns an allocator starting at a non-zero base so that
// address 0 never aliases real data.
func NewAddressSpace() *AddressSpace { return &AddressSpace{next: 1 << 12} }

// Alloc reserves size bytes aligned to align (a power of two; 0 or 1 means
// unaligned) and records it under name. It panics on a zero size, which is
// always a caller bug in a workload.
func (a *AddressSpace) Alloc(name string, size, align uint64) Region {
	if size == 0 {
		panic(fmt.Sprintf("trace: zero-size allocation %q", name))
	}
	if align > 1 {
		if align&(align-1) != 0 {
			panic(fmt.Sprintf("trace: alignment %d not a power of two", align))
		}
		a.next = (a.next + align - 1) &^ (align - 1)
	}
	r := Region{Name: name, Base: a.next, Size: size}
	a.next += size
	a.regions = append(a.regions, r)
	return r
}

// Footprint returns the total bytes allocated so far.
func (a *AddressSpace) Footprint() uint64 {
	var s uint64
	for _, r := range a.regions {
		s += r.Size
	}
	return s
}

// Regions returns the allocated regions in allocation order.
func (a *AddressSpace) Regions() []Region {
	out := make([]Region, len(a.regions))
	copy(out, a.regions)
	return out
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// Index returns the byte address of element i of elemSize-byte elements
// stored from the region base.
func (r Region) Index(i int, elemSize uint64) uint64 {
	return r.Base + uint64(i)*elemSize
}
