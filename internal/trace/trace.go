// Package trace defines per-processor memory-reference streams: the
// interface between the instrumented SPMD workloads (the repository's
// MINT-substitute front-end) and both the stack-distance analyzer and the
// execution-driven memory-hierarchy simulators.
//
// A stream is a sequence of events: memory reads and writes (byte
// addresses), compute gaps (instruction counts with no memory reference),
// and barrier crossings. Every memory reference itself also counts as one
// instruction, matching the paper's accounting where a program consists of
// m non-referencing and M referencing instructions.
//
//chc:deterministic
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Kind discriminates trace events.
type Kind uint8

// Event kinds.
const (
	Read    Kind = iota // memory load; Addr is a byte address
	Write               // memory store; Addr is a byte address
	Compute             // N instructions with no memory reference
	Barrier             // global barrier crossing
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Compute:
		return "C"
	case Barrier:
		return "B"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one entry of a processor's reference stream.
type Event struct {
	Kind Kind
	Addr uint64 // byte address (Read/Write)
	N    uint64 // instruction count (Compute)
}

// Stream is the event sequence of a single logical processor.
type Stream struct {
	CPU    int
	Events []Event

	reads    uint64
	writes   uint64
	computes uint64 // total instructions inside Compute events
	barriers uint64
	maxAddr  uint64 // largest byte address referenced (Validate bound check)

	opsMu  sync.Mutex // guards ops, opsErr, opsLen
	ops    []Op       // guarded by opsMu: compiled form of Events
	opsErr error      // guarded by opsMu: compile failure (unknown event kind)
	opsLen int        // guarded by opsMu: len(Events) the ops were compiled from
}

// NewStream returns an empty stream for the given logical CPU.
func NewStream(cpu int) *Stream { return &Stream{CPU: cpu} }

// Reserve grows the stream's event capacity to hold at least n more events
// without reallocation. Under-reserving is safe (appends grow as usual);
// it only forgoes part of the saving.
func (s *Stream) Reserve(n int) {
	if free := cap(s.Events) - len(s.Events); free < n {
		grown := make([]Event, len(s.Events), len(s.Events)+n)
		copy(grown, s.Events)
		s.Events = grown
	}
}

// AddRead appends a load of the given byte address.
func (s *Stream) AddRead(addr uint64) {
	s.Events = append(s.Events, Event{Kind: Read, Addr: addr})
	s.reads++
	if addr > s.maxAddr {
		s.maxAddr = addr
	}
}

// AddWrite appends a store to the given byte address.
func (s *Stream) AddWrite(addr uint64) {
	s.Events = append(s.Events, Event{Kind: Write, Addr: addr})
	s.writes++
	if addr > s.maxAddr {
		s.maxAddr = addr
	}
}

// AddCompute appends n non-referencing instructions. Consecutive compute
// gaps are coalesced. n <= 0 is a no-op.
func (s *Stream) AddCompute(n uint64) {
	if n == 0 {
		return
	}
	s.computes += n
	if last := len(s.Events) - 1; last >= 0 && s.Events[last].Kind == Compute {
		s.Events[last].N += n
		return
	}
	s.Events = append(s.Events, Event{Kind: Compute, N: n})
}

// AddBarrier appends a barrier crossing.
func (s *Stream) AddBarrier() {
	s.Events = append(s.Events, Event{Kind: Barrier})
	s.barriers++
}

// MemoryRefs returns M: the number of referencing instructions.
func (s *Stream) MemoryRefs() uint64 { return s.reads + s.writes }

// Reads returns the number of load events.
func (s *Stream) Reads() uint64 { return s.reads }

// Writes returns the number of store events.
func (s *Stream) Writes() uint64 { return s.writes }

// ComputeInstrs returns m: the number of non-referencing instructions.
func (s *Stream) ComputeInstrs() uint64 { return s.computes }

// Barriers returns the number of barrier crossings.
func (s *Stream) Barriers() uint64 { return s.barriers }

// Instructions returns m + M, the total instruction count of the stream.
func (s *Stream) Instructions() uint64 { return s.computes + s.MemoryRefs() }

// Gamma returns γ = M/(m+M) for this stream, or 0 for an empty stream.
func (s *Stream) Gamma() float64 {
	total := s.Instructions()
	if total == 0 {
		return 0
	}
	return float64(s.MemoryRefs()) / float64(total)
}

// Trace is the collection of per-processor streams of one SPMD execution.
type Trace struct {
	Streams []*Stream
}

// New returns a Trace with nproc empty streams.
func New(nproc int) *Trace {
	t := &Trace{Streams: make([]*Stream, nproc)}
	for i := range t.Streams {
		t.Streams[i] = NewStream(i)
	}
	return t
}

// NumCPU returns the number of processor streams.
func (t *Trace) NumCPU() int { return len(t.Streams) }

// Reserve pre-sizes every stream for about perCPU further events, so a
// producer that knows its event count up front (see workloads.EventHinter)
// skips the append growth chain — the dominant allocation cost of trace
// generation.
func (t *Trace) Reserve(perCPU int) {
	for _, s := range t.Streams {
		s.Reserve(perCPU)
	}
}

// MemoryRefs returns the total M across all streams.
func (t *Trace) MemoryRefs() uint64 {
	var s uint64
	for _, st := range t.Streams {
		s += st.MemoryRefs()
	}
	return s
}

// Instructions returns the total m+M across all streams.
func (t *Trace) Instructions() uint64 {
	var s uint64
	for _, st := range t.Streams {
		s += st.Instructions()
	}
	return s
}

// Gamma returns the aggregate γ = M/(m+M) over all streams.
func (t *Trace) Gamma() float64 {
	total := t.Instructions()
	if total == 0 {
		return 0
	}
	return float64(t.MemoryRefs()) / float64(total)
}

// Validate checks cross-stream consistency: every stream must cross the
// same number of barriers (the bulk-synchronous structure the simulators
// rely on).
func (t *Trace) Validate() error {
	if len(t.Streams) == 0 {
		return errors.New("trace: no streams")
	}
	want := t.Streams[0].Barriers()
	for _, s := range t.Streams[1:] {
		if s.Barriers() != want {
			return fmt.Errorf("trace: cpu %d crossed %d barriers, cpu %d crossed %d",
				s.CPU, s.Barriers(), t.Streams[0].CPU, want)
		}
	}
	for _, s := range t.Streams {
		if s.maxAddr > MaxAddr {
			return fmt.Errorf("trace: cpu %d references address %#x beyond the simulable range (%#x)",
				s.CPU, s.maxAddr, MaxAddr)
		}
	}
	return nil
}

// LineAddr maps a byte address to its cache-line identity for a given line
// size in bytes (must be a power of two).
func LineAddr(addr uint64, lineSize int) uint64 {
	return addr / uint64(lineSize)
}

// MaxAddr bounds simulable byte addresses: compiled ops pack the address
// and the action kind into one word (see Op), reserving the top two bits.
// Four exabytes of address space leaves every realistic workload untouched;
// Validate rejects streams beyond it so the engines never see one.
const MaxAddr = uint64(1)<<62 - 1

// Op is one step of a stream's compiled form: a compute gap of N
// instructions followed by at most one action. The simulator engines run on
// ops instead of raw events — the dominant compute-then-reference pattern
// costs one loop iteration instead of two, and an op is 16 bytes against an
// Event's 24.
//
// Compilation preserves simulation semantics bit-for-bit: each op performs
// the same clock arithmetic, in the same order, as replaying its source
// events one by one. Adjacent Compute events (possible in deserialized
// traces, which must not coalesce — see readPlain) compile to separate
// OpNone ops so the engine issues the same two floating-point advances the
// event form would.
type Op struct {
	// N is the compute instruction count executed before the action. Kept
	// integral for the integer-clock engine's advance (clock += N*latInstr
	// in uint64); the float engines convert, which is exact — counts are
	// far below 2^53.
	N   uint64
	Arg uint64 // Addr<<2 | kind (OpNone, OpRead, OpWrite, OpBarrier)
}

// Op action kinds, stored in the low two bits of Op.Arg.
const (
	OpNone    uint64 = iota // compute gap only, no action
	OpRead                  // memory load at Addr
	OpWrite                 // memory store at Addr
	OpBarrier               // global barrier crossing
)

// Kind returns the op's action kind.
func (o Op) Kind() uint64 { return o.Arg & 3 }

// Addr returns the op's byte address (OpRead/OpWrite).
func (o Op) Addr() uint64 { return o.Arg >> 2 }

// Ops returns the stream's compiled form, building it on first use and
// rebuilding it if events were appended since. The compiled slice is cached,
// so simulating the same immutable trace repeatedly (or concurrently, as the
// experiment pipeline does) compiles each stream exactly once. Callers must
// not mutate the returned slice. An event with an unknown kind fails the
// compile.
func (s *Stream) Ops() ([]Op, error) {
	s.opsMu.Lock()
	if (s.ops == nil && s.opsErr == nil) || s.opsLen != len(s.Events) {
		s.ops, s.opsErr = compileEvents(s.Events)
		s.opsLen = len(s.Events)
	}
	ops, err := s.ops, s.opsErr
	s.opsMu.Unlock()
	return ops, err
}

// compileEvents fuses each compute gap with the action that follows it.
func compileEvents(events []Event) ([]Op, error) {
	ops := make([]Op, 0, len(events))
	var pending uint64
	havePending := false
	flush := func() {
		if havePending {
			ops = append(ops, Op{N: pending, Arg: OpNone})
			pending = 0
			havePending = false
		}
	}
	for _, e := range events {
		switch e.Kind {
		case Compute:
			// Two computes in a row stay two ops: fusing them into one
			// N1+N2 advance would change the float arithmetic sequence.
			flush()
			pending = e.N
			havePending = true
		case Read:
			ops = append(ops, Op{N: pending, Arg: e.Addr<<2 | OpRead})
			pending = 0
			havePending = false
		case Write:
			ops = append(ops, Op{N: pending, Arg: e.Addr<<2 | OpWrite})
			pending = 0
			havePending = false
		case Barrier:
			ops = append(ops, Op{N: pending, Arg: OpBarrier})
			pending = 0
			havePending = false
		default:
			return nil, fmt.Errorf("trace: unknown event kind %d", e.Kind)
		}
	}
	flush()
	return ops, nil
}

const (
	magic   = uint32(0x4d485452) // "MHTR"
	version = uint32(1)
)

// WriteTo serializes the trace in a compact varint framing.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], v)
		m, err := bw.Write(buf[:k])
		n += int64(m)
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	m, err := bw.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	if err := put(uint64(len(t.Streams))); err != nil {
		return n, err
	}
	for _, s := range t.Streams {
		if err := put(uint64(s.CPU)); err != nil {
			return n, err
		}
		if err := put(uint64(len(s.Events))); err != nil {
			return n, err
		}
		for _, e := range s.Events {
			if err := put(uint64(e.Kind)); err != nil {
				return n, err
			}
			switch e.Kind {
			case Read, Write:
				if err := put(e.Addr); err != nil {
					return n, err
				}
			case Compute:
				if err := put(e.N); err != nil {
					return n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// WriteGzip serializes the trace as WriteTo does, gzip-compressed. Traces
// compress well (addresses are clustered and compute gaps repeat); archived
// paper-scale traces shrink by roughly an order of magnitude.
func (t *Trace) WriteGzip(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	gz := gzip.NewWriter(cw)
	if _, err := t.WriteTo(gz); err != nil {
		gz.Close()
		return cw.n, err
	}
	if err := gz.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a trace written by WriteTo or WriteGzip (detected
// by the gzip magic), replacing the receiver's contents.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		cr0 := &countingReader{r: br}
		gz, err := gzip.NewReader(cr0)
		if err != nil {
			return cr0.n, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		defer gz.Close()
		if _, err := t.readPlain(bufio.NewReader(gz)); err != nil {
			return cr0.n, err
		}
		return cr0.n, nil
	}
	return t.readPlain(br)
}

func (t *Trace) readPlain(br *bufio.Reader) (int64, error) {
	cr := &countingReader{r: br}
	var hdr [8]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return cr.n, fmt.Errorf("trace: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != magic {
		return cr.n, fmt.Errorf("trace: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != version {
		return cr.n, fmt.Errorf("trace: unsupported version %d", got)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(cr) }
	nStreams, err := get()
	if err != nil {
		return cr.n, err
	}
	const maxStreams = 1 << 20
	if nStreams > maxStreams {
		return cr.n, fmt.Errorf("trace: implausible stream count %d", nStreams)
	}
	t.Streams = make([]*Stream, 0, nStreams)
	for i := uint64(0); i < nStreams; i++ {
		cpu, err := get()
		if err != nil {
			return cr.n, err
		}
		nEvents, err := get()
		if err != nil {
			return cr.n, err
		}
		s := NewStream(int(cpu))
		if nEvents > 0 {
			s.Events = make([]Event, 0, min(nEvents, 1<<20))
		}
		for j := uint64(0); j < nEvents; j++ {
			kindRaw, err := get()
			if err != nil {
				return cr.n, err
			}
			switch Kind(kindRaw) {
			case Read:
				a, err := get()
				if err != nil {
					return cr.n, err
				}
				s.AddRead(a)
			case Write:
				a, err := get()
				if err != nil {
					return cr.n, err
				}
				s.AddWrite(a)
			case Compute:
				v, err := get()
				if err != nil {
					return cr.n, err
				}
				// Append directly: AddCompute would coalesce and change the
				// event count, breaking the framing contract.
				s.Events = append(s.Events, Event{Kind: Compute, N: v})
				s.computes += v
			case Barrier:
				s.AddBarrier()
			default:
				return cr.n, fmt.Errorf("trace: unknown event kind %d", kindRaw)
			}
		}
		t.Streams = append(t.Streams, s)
	}
	return cr.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
