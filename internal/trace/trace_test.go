package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Read, "R"}, {Write, "W"}, {Compute, "C"}, {Barrier, "B"}, {Kind(9), "Kind(9)"},
	}
	for _, tc := range tests {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tc.k, got, tc.want)
		}
	}
}

func TestStreamCounters(t *testing.T) {
	s := NewStream(3)
	s.AddRead(100)
	s.AddWrite(200)
	s.AddRead(100)
	s.AddCompute(10)
	s.AddCompute(5)
	s.AddBarrier()
	s.AddCompute(0) // no-op

	if s.CPU != 3 {
		t.Errorf("CPU = %d", s.CPU)
	}
	if s.Reads() != 2 || s.Writes() != 1 || s.MemoryRefs() != 3 {
		t.Errorf("refs: R=%d W=%d M=%d", s.Reads(), s.Writes(), s.MemoryRefs())
	}
	if s.ComputeInstrs() != 15 {
		t.Errorf("ComputeInstrs = %d, want 15", s.ComputeInstrs())
	}
	if s.Barriers() != 1 {
		t.Errorf("Barriers = %d, want 1", s.Barriers())
	}
	if s.Instructions() != 18 {
		t.Errorf("Instructions = %d, want 18", s.Instructions())
	}
	if got, want := s.Gamma(), 3.0/18; math.Abs(got-want) > 1e-12 {
		t.Errorf("Gamma = %v, want %v", got, want)
	}
}

func TestComputeCoalescing(t *testing.T) {
	s := NewStream(0)
	s.AddCompute(3)
	s.AddCompute(4)
	if len(s.Events) != 1 || s.Events[0].N != 7 {
		t.Fatalf("consecutive computes not coalesced: %+v", s.Events)
	}
	s.AddRead(8)
	s.AddCompute(2)
	if len(s.Events) != 3 {
		t.Fatalf("compute after read should not coalesce: %+v", s.Events)
	}
}

func TestGammaEmpty(t *testing.T) {
	s := NewStream(0)
	if s.Gamma() != 0 {
		t.Error("empty stream Gamma should be 0")
	}
	tr := New(0)
	if tr.Gamma() != 0 {
		t.Error("empty trace Gamma should be 0")
	}
}

func TestTraceAggregates(t *testing.T) {
	tr := New(2)
	tr.Streams[0].AddRead(1)
	tr.Streams[0].AddCompute(9)
	tr.Streams[1].AddWrite(2)
	tr.Streams[1].AddCompute(4)
	if tr.NumCPU() != 2 {
		t.Errorf("NumCPU = %d", tr.NumCPU())
	}
	if tr.MemoryRefs() != 2 {
		t.Errorf("MemoryRefs = %d", tr.MemoryRefs())
	}
	if tr.Instructions() != 15 {
		t.Errorf("Instructions = %d", tr.Instructions())
	}
	if got, want := tr.Gamma(), 2.0/15; math.Abs(got-want) > 1e-12 {
		t.Errorf("Gamma = %v, want %v", got, want)
	}
}

func TestValidateBarrierMismatch(t *testing.T) {
	tr := New(2)
	tr.Streams[0].AddBarrier()
	if err := tr.Validate(); err == nil {
		t.Error("barrier mismatch not detected")
	}
	tr.Streams[1].AddBarrier()
	if err := tr.Validate(); err != nil {
		t.Errorf("balanced barriers rejected: %v", err)
	}
	empty := &Trace{}
	if err := empty.Validate(); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestLineAddr(t *testing.T) {
	if got := LineAddr(0, 64); got != 0 {
		t.Errorf("LineAddr(0,64) = %d", got)
	}
	if got := LineAddr(63, 64); got != 0 {
		t.Errorf("LineAddr(63,64) = %d", got)
	}
	if got := LineAddr(64, 64); got != 1 {
		t.Errorf("LineAddr(64,64) = %d", got)
	}
	if got := LineAddr(1000, 256); got != 3 {
		t.Errorf("LineAddr(1000,256) = %d", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := New(3)
	tr.Streams[0].AddRead(0xdeadbeef)
	tr.Streams[0].AddCompute(1000)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddWrite(42)
	tr.Streams[1].AddBarrier()
	tr.Streams[2].AddBarrier()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(got.Streams) != 3 {
		t.Fatalf("got %d streams", len(got.Streams))
	}
	for i := range tr.Streams {
		a, b := tr.Streams[i], got.Streams[i]
		if a.CPU != b.CPU || !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("stream %d mismatch:\n%+v\n%+v", i, a.Events, b.Events)
		}
		if a.MemoryRefs() != b.MemoryRefs() || a.ComputeInstrs() != b.ComputeInstrs() ||
			a.Barriers() != b.Barriers() {
			t.Errorf("stream %d counters mismatch", i)
		}
	}
}

// TestAddComputeCoalesces pins the coalescing contract: consecutive
// AddCompute calls merge into the preceding Compute event, the instruction
// counters stay consistent with the merged events, Validate accepts the
// result, and the coalesced form survives a serialization round trip.
func TestAddComputeCoalesces(t *testing.T) {
	tr := New(1)
	s := tr.Streams[0]
	s.AddCompute(3)
	s.AddCompute(0) // no-op, must not break the run
	s.AddCompute(4)
	s.AddRead(64)
	s.AddCompute(5)
	s.AddCompute(6)
	s.AddBarrier()
	s.AddCompute(2) // after a barrier: a fresh Compute event

	want := []Event{
		{Kind: Compute, N: 7},
		{Kind: Read, Addr: 64},
		{Kind: Compute, N: 11},
		{Kind: Barrier},
		{Kind: Compute, N: 2},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("coalesced events:\n got %+v\nwant %+v", s.Events, want)
	}
	if s.ComputeInstrs() != 20 {
		t.Errorf("ComputeInstrs = %d, want 20", s.ComputeInstrs())
	}
	if s.Instructions() != 21 {
		t.Errorf("Instructions = %d, want 21", s.Instructions())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	rs := got.Streams[0]
	if !reflect.DeepEqual(rs.Events, want) {
		t.Errorf("round-tripped events:\n got %+v\nwant %+v", rs.Events, want)
	}
	if rs.ComputeInstrs() != s.ComputeInstrs() || rs.Instructions() != s.Instructions() ||
		rs.Barriers() != s.Barriers() {
		t.Errorf("round-tripped counters mismatch: %+v vs %+v", rs, s)
	}
}

func TestSerializationPropertyRoundTrip(t *testing.T) {
	f := func(ops []uint32) bool {
		tr := New(1)
		s := tr.Streams[0]
		for _, op := range ops {
			switch op % 4 {
			case 0:
				s.AddRead(uint64(op))
			case 1:
				s.AddWrite(uint64(op) * 3)
			case 2:
				s.AddCompute(uint64(op%1000) + 1)
			case 3:
				s.AddBarrier()
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		var got Trace
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		return reflect.DeepEqual(got.Streams[0].Events, s.Events) &&
			got.Streams[0].Gamma() == s.Gamma()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	tr := New(2)
	for i := 0; i < 500; i++ {
		tr.Streams[0].AddRead(uint64(i * 64))
		tr.Streams[1].AddWrite(uint64(i * 8))
		tr.Streams[0].AddCompute(uint64(i%7 + 1))
	}
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddBarrier()

	var plain, packed bytes.Buffer
	if _, err := tr.WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	n, err := tr.WriteGzip(&packed)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(packed.Len()) {
		t.Errorf("WriteGzip reported %d bytes, buffer has %d", n, packed.Len())
	}
	if packed.Len() >= plain.Len() {
		t.Errorf("gzip did not compress: %d vs %d", packed.Len(), plain.Len())
	}
	// ReadFrom auto-detects compression.
	var got Trace
	if _, err := got.ReadFrom(bytes.NewReader(packed.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Streams[0].Events, tr.Streams[0].Events) ||
		!reflect.DeepEqual(got.Streams[1].Events, tr.Streams[1].Events) {
		t.Error("gzip round trip lost events")
	}
	// And still reads plain traces.
	var gotPlain Trace
	if _, err := gotPlain.ReadFrom(bytes.NewReader(plain.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPlain.Streams[0].Events, tr.Streams[0].Events) {
		t.Error("plain round trip lost events")
	}
}

func TestGzipCorruptRejected(t *testing.T) {
	var tr Trace
	// Valid gzip magic, garbage stream.
	if _, err := tr.ReadFrom(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00, 0x01})); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := tr.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Correct magic, wrong version.
	bad := []byte{0x52, 0x54, 0x48, 0x4d, 0xff, 0, 0, 0}
	if _, err := tr.ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestAddressSpaceAlloc(t *testing.T) {
	as := NewAddressSpace()
	r1 := as.Alloc("a", 100, 64)
	r2 := as.Alloc("b", 50, 64)
	if r1.Base%64 != 0 || r2.Base%64 != 0 {
		t.Errorf("misaligned: %d %d", r1.Base, r2.Base)
	}
	if r1.Base+r1.Size > r2.Base {
		t.Errorf("overlap: %+v %+v", r1, r2)
	}
	if as.Footprint() != 150 {
		t.Errorf("Footprint = %d", as.Footprint())
	}
	if len(as.Regions()) != 2 {
		t.Errorf("Regions = %v", as.Regions())
	}
	if !r1.Contains(r1.Base) || r1.Contains(r1.Base+r1.Size) {
		t.Error("Contains wrong at boundaries")
	}
	if got := r1.Index(3, 8); got != r1.Base+24 {
		t.Errorf("Index = %d", got)
	}
}

func TestAddressSpacePanics(t *testing.T) {
	as := NewAddressSpace()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero size", func() { as.Alloc("z", 0, 8) })
	mustPanic("bad align", func() { as.Alloc("a", 8, 3) })
}

func TestAddressSpaceNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := NewAddressSpace()
		var regs []Region
		for i, sz := range sizes {
			if sz == 0 {
				continue
			}
			regs = append(regs, as.Alloc("r", uint64(sz), 8))
			_ = i
		}
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				a, b := regs[i], regs[j]
				if a.Base < b.Base+b.Size && b.Base < a.Base+a.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteTo(b *testing.B) {
	tr := New(4)
	for cpu := 0; cpu < 4; cpu++ {
		for i := 0; i < 10000; i++ {
			tr.Streams[cpu].AddRead(uint64(i * 64))
			tr.Streams[cpu].AddCompute(5)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrom(b *testing.B) {
	tr := New(4)
	for cpu := 0; cpu < 4; cpu++ {
		for i := 0; i < 10000; i++ {
			tr.Streams[cpu].AddRead(uint64(i * 64))
			tr.Streams[cpu].AddCompute(5)
		}
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got Trace
		if _, err := got.ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
