package netmodel

import (
	"math"
	"testing"

	"memhier/internal/machine"
)

// TestDerivedLatenciesMatchPaperTable: the first-principles model must
// reproduce the §5.1 constants at 200 MHz within one cycle.
func TestDerivedLatenciesMatchPaperTable(t *testing.T) {
	cases := []struct {
		link      Link
		wantNode  float64
		wantDirty float64
	}{
		{Ethernet10, 45075, 90150},
		{Ethernet100, 4575, 9150},
		{ATM155, 3275, 6550},
	}
	for _, tc := range cases {
		if got := tc.link.RemoteNodeCycles(200); math.Abs(got-tc.wantNode) > 1 {
			t.Errorf("%s remote-node = %v, want %v", tc.link.Name, got, tc.wantNode)
		}
		if got := tc.link.RemoteCachedCycles(200); math.Abs(got-tc.wantDirty) > 2 {
			t.Errorf("%s remote-cached = %v, want %v", tc.link.Name, got, tc.wantDirty)
		}
	}
}

func TestSerializationScalesWithBandwidthAndClock(t *testing.T) {
	// Ten times the bandwidth, a tenth of the wire time.
	s10 := Ethernet10.SerializationCycles(BlockBytes, 200)
	s100 := Ethernet100.SerializationCycles(BlockBytes, 200)
	if math.Abs(s10/s100-10) > 1e-9 {
		t.Errorf("bandwidth scaling wrong: %v vs %v", s10, s100)
	}
	// Twice the clock, twice the cycles for the same wall time.
	if got, want := Ethernet10.SerializationCycles(BlockBytes, 400), 2*s10; math.Abs(got-want) > 1e-9 {
		t.Errorf("clock scaling wrong: %v vs %v", got, want)
	}
}

func TestPaperLink(t *testing.T) {
	for _, kind := range []machine.NetworkKind{machine.NetBus10, machine.NetBus100, machine.NetSwitch155} {
		l, err := PaperLink(kind)
		if err != nil || l.Name == "" {
			t.Errorf("PaperLink(%v) = %+v, %v", kind, l, err)
		}
	}
	if _, err := PaperLink(machine.NetNone); err == nil {
		t.Error("NetNone accepted")
	}
}

func TestLatenciesTable(t *testing.T) {
	lat := Latencies(machine.ClusterWS, Gigabit, 200)
	if lat.LocalMemory != 50 || lat.LocalDisk != 2000 {
		t.Errorf("base latencies lost: %+v", lat)
	}
	rn := lat.RemoteNode[machine.NetSwitch155]
	if rn <= 0 || rn >= Ethernet100.RemoteNodeCycles(200) {
		t.Errorf("gigabit remote-node %v should be far below 100Mb's %v", rn, Ethernet100.RemoteNodeCycles(200))
	}
	if got := lat.RemoteCached[machine.NetSwitch155]; math.Abs(got-2*rn) > 1e-9 {
		t.Errorf("three-hop %v should be twice two-hop %v", got, rn)
	}
	// Cluster-of-SMPs adds the 3-cycle intra-node arbitration.
	csmp := Latencies(machine.ClusterSMP, Gigabit, 200)
	if got := csmp.RemoteNode[machine.NetSwitch155]; math.Abs(got-(rn+3)) > 1e-9 {
		t.Errorf("cluster-of-SMPs remote-node %v, want %v", got, rn+3)
	}
}

func TestNetKind(t *testing.T) {
	if Ethernet10.NetKind() != machine.NetBus100 {
		t.Error("bus link should map to a bus kind")
	}
	if !Gigabit.Switched || Gigabit.NetKind() != machine.NetSwitch155 {
		t.Error("switched link should map to the switch kind")
	}
}

func TestModernLinksAreFaster(t *testing.T) {
	if Gigabit.RemoteNodeCycles(200) >= ATM155.RemoteNodeCycles(200) {
		t.Error("gigabit should beat ATM")
	}
	if SAN2G.RemoteNodeCycles(200) >= Gigabit.RemoteNodeCycles(200) {
		t.Error("SAN should beat gigabit")
	}
	// A SAN remote access approaches local-memory cost territory (within
	// one order of magnitude of 50 cycles at year-2000 clocks).
	if rn := SAN2G.RemoteNodeCycles(200); rn > 500 {
		t.Errorf("SAN remote access %v cycles implausibly slow", rn)
	}
}
