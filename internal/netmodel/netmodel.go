// Package netmodel derives the paper's §5.1 remote-access latencies from
// first principles — the serialization time of one DSM block over the link
// plus a per-technology software/protocol overhead — and extrapolates them
// to networks the paper could not evaluate in 1999.
//
// The reverse engineering: at 200 MHz, one 256-byte block costs
// 256·8 bits / bandwidth in serialization cycles; the paper's constants
// then imply fixed overheads of 4115 cycles for 10 Mb Ethernet (CSMA/CD
// arbitration and a heavy software stack), 479 for 100 Mb Ethernet, and
// 633 for the 155 Mb ATM switch (SAR segmentation). A three-hop transfer
// of remotely cached data costs exactly twice a two-hop one, as in the
// paper's table.
//
//chc:deterministic
package netmodel

import (
	"fmt"

	"memhier/internal/machine"
)

// Link is an interconnect technology.
type Link struct {
	Name           string
	BandwidthMbps  float64
	OverheadCycles float64 // fixed per-transfer cost at 200 MHz
	Switched       bool    // per-port switching vs a shared bus
}

// BlockBytes is the DSM transfer granule of the paper's directory protocol.
const BlockBytes = 256

// SerializationCycles returns the pure wire time of payloadBytes at the
// given clock.
func (l Link) SerializationCycles(payloadBytes int, clockMHz float64) float64 {
	return float64(payloadBytes*8) / (l.BandwidthMbps * 1e6) * clockMHz * 1e6
}

// RemoteNodeCycles returns the two-hop "cache miss to a remote node" cost:
// block serialization plus the technology's fixed overhead.
func (l Link) RemoteNodeCycles(clockMHz float64) float64 {
	return l.SerializationCycles(BlockBytes, clockMHz) + l.OverheadCycles
}

// RemoteCachedCycles returns the three-hop "cache miss to remotely cached
// data" cost, twice the two-hop cost as in the paper's table.
func (l Link) RemoteCachedCycles(clockMHz float64) float64 {
	return 2 * l.RemoteNodeCycles(clockMHz)
}

// The paper's three networks with their reverse-engineered overheads: these
// reproduce the §5.1 table exactly at 200 MHz (see the package test).
var (
	Ethernet10  = Link{Name: "10Mb Ethernet", BandwidthMbps: 10, OverheadCycles: 4115}
	Ethernet100 = Link{Name: "100Mb Ethernet", BandwidthMbps: 100, OverheadCycles: 479}
	ATM155      = Link{Name: "155Mb ATM", BandwidthMbps: 155, OverheadCycles: 633.35, Switched: true}
)

// Post-1999 technologies for the extension experiments. Overheads reflect
// kernel-bypass trends: Gigabit Ethernet with a conventional stack, and a
// SAN-class switched fabric with microsecond software cost.
var (
	Gigabit = Link{Name: "1Gb Ethernet", BandwidthMbps: 1000, OverheadCycles: 400, Switched: true}
	SAN2G   = Link{Name: "2Gb SAN", BandwidthMbps: 2000, OverheadCycles: 60, Switched: true}
)

// PaperLink returns the Link matching a catalog network kind.
func PaperLink(kind machine.NetworkKind) (Link, error) {
	switch kind {
	case machine.NetBus10:
		return Ethernet10, nil
	case machine.NetBus100:
		return Ethernet100, nil
	case machine.NetSwitch155:
		return ATM155, nil
	}
	return Link{}, fmt.Errorf("netmodel: no link model for %v", kind)
}

// Latencies builds a full §5.1-style latency table for the platform kind
// with the link's derived remote costs, so hypothetical networks can feed
// core.Options.Latencies. The cluster-of-SMPs variant adds the paper's
// 3-cycle intra-node arbitration to both remote costs.
func Latencies(kind machine.PlatformKind, l Link, clockMHz float64) machine.Latencies {
	lat := machine.DefaultLatencies(kind)
	rn := l.RemoteNodeCycles(clockMHz)
	rc := l.RemoteCachedCycles(clockMHz)
	if kind == machine.ClusterSMP {
		rn += 3
		rc += 3
	}
	// The derived link stands in for whichever catalog kind the caller
	// uses; populate all three so any Config.Net picks it up.
	lat.RemoteNode = map[machine.NetworkKind]float64{
		machine.NetBus10: rn, machine.NetBus100: rn, machine.NetSwitch155: rn,
	}
	lat.RemoteCached = map[machine.NetworkKind]float64{
		machine.NetBus10: rc, machine.NetBus100: rc, machine.NetSwitch155: rc,
	}
	return lat
}

// NetKind returns the catalog network kind whose contention topology (bus
// or switch) matches the link.
func (l Link) NetKind() machine.NetworkKind {
	if l.Switched {
		return machine.NetSwitch155
	}
	return machine.NetBus100
}
