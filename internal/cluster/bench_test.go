package cluster

// Cluster serving benchmarks over real TCP listeners: the 2× criterion —
// answering a warm key through a forwarding entry node should cost no
// more than twice a local cache hit, since both are one request-sized
// HTTP exchange (the forward adds exactly one more).

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"memhier/internal/client"
	"memhier/internal/server"
)

// benchCluster wires n nodes like startCluster, without the test-only
// forwarding recorder in the handler path.
func benchCluster(b *testing.B, n int, entryCfg server.Config) []*testNode {
	b.Helper()
	nodes := make([]*testNode, n)
	peers := make(map[string]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		nodes[i] = &testNode{name: fmt.Sprintf("n%d", i), ts: httptest.NewServer(sh), swap: sh}
		peers[nodes[i].name] = nodes[i].ts.URL
	}
	for i, nd := range nodes {
		cl, err := New(Config{
			Self: nd.name, Peers: peers,
			ClientOptions: client.Options{
				MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := server.Config{Forwarder: cl}
		if i == 0 {
			cfg = entryCfg
			cfg.Forwarder = cl
		}
		nd.cl = cl
		nd.srv = server.New(cfg)
		nd.swap.v.Store(nd.srv.Handler())
		b.Cleanup(nd.srv.Close)
		b.Cleanup(nd.ts.Close)
	}
	return nodes
}

// benchHTTPClient keeps enough idle connections for the parallel
// benchmarks (http.DefaultClient caps idle conns per host at 2, which
// would turn concurrency into a redial storm and measure the dialer).
var benchHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 100,
	},
}

func benchPost(b *testing.B, url string, body []byte) (int, http.Header) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := benchHTTPClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header
}

// BenchmarkClusterLocalHit: a warm key served by the entry node itself —
// the baseline one-exchange answer.
func BenchmarkClusterLocalHit(b *testing.B) {
	nodes := benchCluster(b, 2, server.Config{})
	entry := nodes[0]

	// Find a key the entry node owns (via=local), then warm it.
	var body []byte
	for i := 0; i < 200; i++ {
		cand := predictBody(i)
		status, h := benchPost(b, entry.ts.URL+"/v1/predict", cand)
		if status != http.StatusOK {
			b.Fatalf("probe %d: status %d", i, status)
		}
		if h.Get(server.ClusterViaHeader) == "local" {
			body = cand
			break
		}
	}
	if body == nil {
		b.Fatal("no locally-owned candidate found")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if status, _ := benchPost(b, entry.ts.URL+"/v1/predict", body); status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

// BenchmarkClusterLocalHitParallel is the local-hit baseline under
// concurrency — the regime a loaded cluster actually serves in, where
// wire latency overlaps across requests.
func BenchmarkClusterLocalHitParallel(b *testing.B) {
	nodes := benchCluster(b, 2, server.Config{})
	entry := nodes[0]

	var body []byte
	for i := 0; i < 200; i++ {
		cand := predictBody(i)
		status, h := benchPost(b, entry.ts.URL+"/v1/predict", cand)
		if status != http.StatusOK {
			b.Fatalf("probe %d: status %d", i, status)
		}
		if h.Get(server.ClusterViaHeader) == "local" {
			body = cand
			break
		}
	}
	if body == nil {
		b.Fatal("no locally-owned candidate found")
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if status, _ := benchPost(b, entry.ts.URL+"/v1/predict", body); status != http.StatusOK {
				b.Fatalf("status %d", status)
			}
		}
	})
}

// BenchmarkClusterForwardHit: every iteration misses the entry node's
// (deliberately tiny) cache, forwards to the owner, and hits the owner's
// warm cache — the steady-state cost of serving a peer-owned key.
func BenchmarkClusterForwardHit(b *testing.B) {
	// A one-entry cache at the entry node: two peer-owned keys evict
	// each other, so alternating them forwards every single iteration.
	nodes := benchCluster(b, 2, server.Config{CacheEntries: 1, CacheShards: 1})
	entry, owner := nodes[0], nodes[1]

	var bodies [][]byte
	for i := 0; len(bodies) < 2 && i < 400; i++ {
		cand := predictBody(i)
		status, h := benchPost(b, entry.ts.URL+"/v1/predict", cand)
		if status != http.StatusOK {
			b.Fatalf("probe %d: status %d", i, status)
		}
		if h.Get(server.ClusterViaHeader) == "forward" && h.Get(server.ClusterOwnerHeader) == owner.name {
			bodies = append(bodies, cand)
		}
	}
	if len(bodies) < 2 {
		b.Fatal("fewer than two peer-owned candidates found")
	}
	// Warm the owner's cache for both keys (done by the probes above),
	// then confirm the steady state really forwards.
	if _, h := benchPost(b, entry.ts.URL+"/v1/predict", bodies[0]); h.Get(server.ClusterViaHeader) != "forward" {
		b.Fatalf("steady state is %q, want forward", h.Get(server.ClusterViaHeader))
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if status, _ := benchPost(b, entry.ts.URL+"/v1/predict", bodies[i%2]); status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

// BenchmarkClusterForwardHitParallel: the forwarded-hit path under
// concurrency. A pool of peer-owned keys cycles through the one-entry
// entry cache, so nearly every request forwards; overlapping requests
// hide the wire latency the serial benchmark pays twice in full.
func BenchmarkClusterForwardHitParallel(b *testing.B) {
	nodes := benchCluster(b, 2, server.Config{CacheEntries: 1, CacheShards: 1})
	entry, owner := nodes[0], nodes[1]

	var bodies [][]byte
	for i := 0; len(bodies) < 64 && i < 400; i++ {
		cand := predictBody(i)
		status, h := benchPost(b, entry.ts.URL+"/v1/predict", cand)
		if status != http.StatusOK {
			b.Fatalf("probe %d: status %d", i, status)
		}
		if h.Get(server.ClusterViaHeader) == "forward" && h.Get(server.ClusterOwnerHeader) == owner.name {
			bodies = append(bodies, cand)
		}
	}
	if len(bodies) < 8 {
		b.Fatalf("only %d peer-owned candidates found", len(bodies))
	}

	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := bodies[next.Add(1)%uint64(len(bodies))]
			if status, _ := benchPost(b, entry.ts.URL+"/v1/predict", body); status != http.StatusOK {
				b.Fatalf("status %d", status)
			}
		}
	})
}
