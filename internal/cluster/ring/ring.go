// Package ring is the deterministic consistent-hash ring that places
// canonical request keys on cluster nodes. Each node contributes a fixed
// number of virtual points hashed onto a 64-bit circle; a key belongs to
// the node owning the first point clockwise of the key's hash. Virtual
// points smooth ownership (the per-node fraction of the circle
// concentrates around 1/N as points grow), and consistent hashing gives
// minimal movement: adding a node only moves keys onto the new node, and
// removing one only moves the keys it owned.
//
// The ring is a pure function of (nodes, points-per-node, seed): node
// insertion order does not matter, no wall clock or global randomness is
// consulted, and the same inputs build bit-identical rings on every
// process — which is what lets every cluster member compute placement
// locally and agree without coordination.
//
//chc:deterministic
package ring

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultPoints is the virtual-point count per node when Config leaves it
// zero: enough that ownership fractions concentrate near 1/N for small
// clusters without making ring construction or rebuilds noticeable.
const DefaultPoints = 128

// Config describes a ring. The zero value of Points and Seed selects the
// documented defaults; Nodes must be non-empty and duplicate-free.
type Config struct {
	// Nodes are the member names (any non-empty strings, typically the
	// -node names of the chc-serve processes). Order does not matter.
	Nodes []string
	// Points is the number of virtual points per node (default
	// DefaultPoints).
	Points int
	// Seed perturbs every hash. Two rings with different seeds place keys
	// independently; all members of one cluster must share one seed.
	Seed uint64
}

// Ring is an immutable consistent-hash ring; safe for concurrent use.
type Ring struct {
	nodes  []string // sorted member names
	points int
	seed   uint64
	hashes []uint64 // sorted virtual-point hashes
	owner  []int    // owner[i] = index into nodes of hashes[i]'s node
}

// New builds the ring. It fails loudly on an empty membership, an empty
// or duplicate node name, or a virtual-point hash collision (possible in
// principle with a 64-bit hash, and silently corrupting placement if
// ignored — a different seed resolves it).
func New(cfg Config) (*Ring, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	points := cfg.Points
	if points <= 0 {
		points = DefaultPoints
	}
	nodes := append([]string(nil), cfg.Nodes...)
	sort.Strings(nodes)
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("ring: empty node name")
		}
		if i > 0 && nodes[i-1] == n {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
	}
	r := &Ring{
		nodes:  nodes,
		points: points,
		seed:   cfg.Seed,
		hashes: make([]uint64, 0, len(nodes)*points),
		owner:  make([]int, 0, len(nodes)*points),
	}
	type vpoint struct {
		hash uint64
		node int
	}
	vps := make([]vpoint, 0, len(nodes)*points)
	for ni, n := range nodes {
		for p := 0; p < points; p++ {
			vps = append(vps, vpoint{hash: hashPoint(cfg.Seed, n, p), node: ni})
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i].hash < vps[j].hash })
	for i, vp := range vps {
		if i > 0 && vps[i-1].hash == vp.hash {
			return nil, fmt.Errorf("ring: virtual-point hash collision between %q and %q (change the seed)",
				nodes[vps[i-1].node], nodes[vp.node])
		}
		r.hashes = append(r.hashes, vp.hash)
		r.owner = append(r.owner, vp.node)
	}
	return r, nil
}

// Nodes returns the sorted member names (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.owner[r.successor(hashKey(r.seed, key))]]
}

// Owners returns the first n distinct nodes clockwise of key: the primary
// owner first, then the replicas in replication order. n is clamped to
// the membership size.
func (r *Ring) Owners(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := r.successor(hashKey(r.seed, key)); len(owners) < n; i = (i + 1) % len(r.hashes) {
		ni := r.owner[i]
		if !seen[ni] {
			seen[ni] = true
			owners = append(owners, r.nodes[ni])
		}
	}
	return owners
}

// successor returns the index of the first virtual point at or clockwise
// of h (wrapping past the top of the circle).
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// OwnershipFraction returns the fraction of the hash circle owned by
// node: the summed arc lengths ending at its virtual points. The
// fractions over all members sum to 1; with enough virtual points each
// concentrates near 1/N. Unknown nodes own nothing.
func (r *Ring) OwnershipFraction(node string) float64 {
	ni := sort.SearchStrings(r.nodes, node)
	if ni == len(r.nodes) || r.nodes[ni] != node {
		return 0
	}
	var arcs uint64
	for i, h := range r.hashes {
		if r.owner[i] != ni {
			continue
		}
		if i == 0 {
			// The first point owns the wrap-around arc from the last point.
			arcs += h + (^uint64(0) - r.hashes[len(r.hashes)-1])
		} else {
			arcs += h - r.hashes[i-1]
		}
	}
	return float64(arcs) / float64(^uint64(0))
}

// hashKey hashes a request key onto the circle. FNV-1a over the seed
// bytes then the key, finished with an avalanche mix: dependency-free,
// stable across architectures, and fast enough that placement is
// invisible next to a cache probe.
func hashKey(seed uint64, key string) uint64 {
	h := fnvSeed(seed)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return mix(h)
}

// hashPoint hashes one virtual point of a node. The "#index" suffix
// keeps a node's points independent; the seed prefix keys the whole
// family.
func hashPoint(seed uint64, node string, point int) uint64 {
	h := fnvSeed(seed)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= fnvPrime
	}
	h ^= uint64('#')
	h *= fnvPrime
	s := strconv.Itoa(point)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix(h)
}

// mix is the splitmix64 finalizer. Raw FNV-1a over short, similar
// strings ("node-1#17") leaves its high bits correlated, which shows up
// directly as ring-arc skew; a full avalanche makes virtual points
// behave like independent uniform draws, which the balance bounds rely
// on.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvSeed folds the seed into the FNV offset basis so distinct seeds
// yield independent hash families.
func fnvSeed(seed uint64) uint64 {
	h := uint64(fnvOffset)
	for shift := 0; shift < 64; shift += 8 {
		h ^= (seed >> uint(shift)) & 0xff
		h *= fnvPrime
	}
	return h
}
