package ring

import (
	"fmt"
	"math"
	"testing"
)

func mustRing(t *testing.T, cfg Config) *Ring {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// The shape of real keys: endpoint + NUL + canonical JSON.
		keys[i] = fmt.Sprintf("predict\x00{\"config\":{\"name\":\"C%d\"},\"workload\":{\"name\":\"wl%d\"}}", i%15+1, i)
	}
	return keys
}

func TestNewRejectsBadMembership(t *testing.T) {
	cases := []Config{
		{},                                   // no nodes
		{Nodes: []string{"a", ""}},           // empty name
		{Nodes: []string{"a", "b", "a"}},     // duplicate
		{Nodes: []string{"x", "x"}, Seed: 7}, // duplicate under any seed
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid membership", cfg)
		}
	}
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := mustRing(t, Config{Nodes: []string{"n1", "n2", "n3"}})
	b := mustRing(t, Config{Nodes: []string{"n3", "n1", "n2"}})
	for _, key := range testKeys(500) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q depends on node insertion order: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestSeedSelectsIndependentPlacements(t *testing.T) {
	a := mustRing(t, Config{Nodes: []string{"n1", "n2", "n3", "n4"}, Seed: 1})
	b := mustRing(t, Config{Nodes: []string{"n1", "n2", "n3", "n4"}, Seed: 2})
	moved := 0
	keys := testKeys(1000)
	for _, key := range keys {
		if a.Owner(key) != b.Owner(key) {
			moved++
		}
	}
	// Independent placements agree on ~1/N of keys; identical ones on all.
	if moved == 0 {
		t.Fatalf("seeds 1 and 2 produced identical placements over %d keys", len(keys))
	}
}

// TestBalance is the table-driven balance check: ownership fractions and
// key spreads must concentrate around 1/N.
func TestBalance(t *testing.T) {
	cases := []struct {
		nodes  int
		points int
		// maxSkew bounds max(ownership)/ideal and ideal/min(ownership):
		// the concentration tightens with more points per node.
		maxSkew float64
	}{
		{nodes: 2, points: 128, maxSkew: 1.6},
		{nodes: 3, points: 128, maxSkew: 1.6},
		{nodes: 5, points: 128, maxSkew: 1.6},
		{nodes: 8, points: 256, maxSkew: 1.6},
		{nodes: 16, points: 512, maxSkew: 1.6},
	}
	keys := testKeys(20000)
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n%d_p%d", tc.nodes, tc.points), func(t *testing.T) {
			nodes := make([]string, tc.nodes)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("node-%d", i)
			}
			r := mustRing(t, Config{Nodes: nodes, Points: tc.points})

			ideal := 1.0 / float64(tc.nodes)
			var totalFrac float64
			for _, n := range nodes {
				f := r.OwnershipFraction(n)
				totalFrac += f
				if f > ideal*tc.maxSkew || f < ideal/tc.maxSkew {
					t.Errorf("node %s owns fraction %.4f, outside [%.4f, %.4f]",
						n, f, ideal/tc.maxSkew, ideal*tc.maxSkew)
				}
			}
			if math.Abs(totalFrac-1) > 1e-9 {
				t.Errorf("ownership fractions sum to %.12f, want 1", totalFrac)
			}

			// Sampled key counts agree with the arc fractions.
			counts := make(map[string]int)
			for _, key := range keys {
				counts[r.Owner(key)]++
			}
			for _, n := range nodes {
				got := float64(counts[n]) / float64(len(keys))
				if got > ideal*tc.maxSkew*1.2 || got < ideal/(tc.maxSkew*1.2) {
					t.Errorf("node %s got %.4f of sampled keys, ideal %.4f", n, got, ideal)
				}
			}
		})
	}
}

// TestMinimalMovement: growing the membership moves keys only onto the
// new node, and shrinking moves only the removed node's keys — never a
// key between two surviving nodes.
func TestMinimalMovement(t *testing.T) {
	keys := testKeys(5000)
	for _, n := range []int{2, 3, 5, 9} {
		t.Run(fmt.Sprintf("grow_%d_to_%d", n, n+1), func(t *testing.T) {
			nodes := make([]string, n)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("node-%d", i)
			}
			before := mustRing(t, Config{Nodes: nodes})
			grown := mustRing(t, Config{Nodes: append(append([]string(nil), nodes...), "node-new")})

			moved := 0
			for _, key := range keys {
				was, is := before.Owner(key), grown.Owner(key)
				if was == is {
					continue
				}
				moved++
				if is != "node-new" {
					t.Fatalf("key %q moved %q -> %q, but only the new node may gain keys", key, was, is)
				}
			}
			// The new node should own about 1/(n+1) of the keys; allow wide
			// slack, but catch both "nothing moved" and "everything moved".
			frac := float64(moved) / float64(len(keys))
			ideal := 1.0 / float64(n+1)
			if frac < ideal/3 || frac > ideal*3 {
				t.Errorf("grow moved %.3f of keys, ideal %.3f", frac, ideal)
			}
		})
		t.Run(fmt.Sprintf("shrink_%d", n+1), func(t *testing.T) {
			nodes := make([]string, n+1)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("node-%d", i)
			}
			before := mustRing(t, Config{Nodes: nodes})
			after := mustRing(t, Config{Nodes: nodes[:n]})
			for _, key := range keys {
				was, is := before.Owner(key), after.Owner(key)
				if was == is {
					continue
				}
				if was != nodes[n] {
					t.Fatalf("key %q moved %q -> %q though its owner survived", key, was, is)
				}
			}
		})
	}
}

func TestOwnersDistinctAndStable(t *testing.T) {
	r := mustRing(t, Config{Nodes: []string{"a", "b", "c", "d"}})
	for _, key := range testKeys(300) {
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 2) repeated node %q", key, owners[0])
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %q != Owner %q", key, owners[0], r.Owner(key))
		}
		// Clamping: more replicas than members yields every member once.
		all := r.Owners(key, 99)
		if len(all) != 4 {
			t.Fatalf("Owners(%q, 99) = %v, want all 4 members", key, all)
		}
	}
	// A single-node ring owns everything, at any replication factor.
	solo := mustRing(t, Config{Nodes: []string{"only"}})
	if got := solo.Owners("anything", 2); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-node Owners = %v", got)
	}
	if f := solo.OwnershipFraction("only"); math.Abs(f-1) > 1e-9 {
		t.Fatalf("single node owns fraction %v, want 1", f)
	}
	if f := solo.OwnershipFraction("stranger"); f != 0 {
		t.Fatalf("unknown node owns fraction %v, want 0", f)
	}
}

func BenchmarkOwner(b *testing.B) {
	r, err := New(Config{Nodes: []string{"n1", "n2", "n3", "n4", "n5"}})
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i%len(keys)])
	}
}
