package cluster

// End-to-end cluster tests: real rings, real HTTP servers, real peer
// clients. The harness starts N chc-serve nodes over httptest listeners,
// each wired to its own Cluster forwarder, and drives them through the
// public API — the same wiring cmd/chc-serve -peers produces.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memhier/internal/client"
	"memhier/internal/server"
)

// swapHandler lets the listener start before the server exists (the
// cluster needs every base URL up front, the server needs the cluster).
type swapHandler struct{ v atomic.Value }

func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(http.Handler).ServeHTTP(w, r)
}

type testNode struct {
	name string
	ts   *httptest.Server
	srv  *server.Server
	cl   *Cluster
	swap *swapHandler

	mu        sync.Mutex
	forwarded []forwardSeen // guarded by mu; forwarded requests this node received
}

type forwardSeen struct{ origin, requestID, path string }

// startCluster brings up n nodes named n0..n{n-1} with identical ring
// views. Fast client settings keep owner-failure tests snappy.
func startCluster(t *testing.T, n, replicas int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	peers := make(map[string]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		nodes[i] = &testNode{name: fmt.Sprintf("n%d", i), ts: httptest.NewServer(sh), swap: sh}
		peers[nodes[i].name] = nodes[i].ts.URL
	}
	for _, nd := range nodes {
		cl, err := New(Config{
			Self: nd.name, Peers: peers, Replicas: replicas,
			ClientOptions: client.Options{
				MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.cl = cl
		nd.srv = server.New(server.Config{Forwarder: cl})
		inner := nd.srv.Handler()
		nd.swap.v.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if origin := r.Header.Get(server.ForwardedHeader); origin != "" {
				nd.mu.Lock()
				nd.forwarded = append(nd.forwarded, forwardSeen{
					origin: origin, requestID: r.Header.Get("X-Request-ID"), path: r.URL.Path,
				})
				nd.mu.Unlock()
			}
			inner.ServeHTTP(w, r)
		})))
		t.Cleanup(nd.srv.Close)
		t.Cleanup(nd.ts.Close)
	}
	return nodes
}

// predictBody returns the i-th candidate request: distinct deltas make
// distinct cache keys, scattering candidates across the ring.
func predictBody(i int) []byte {
	return []byte(fmt.Sprintf(
		`{"config":{"name":"C4"},"workload":{"name":"fft"},"delta":%g}`, float64(i+1)/10000))
}

type answer struct {
	status int
	header http.Header
	body   []byte
}

// postNode sends one request to a node's public URL, optionally with an
// explicit request ID.
func postNode(t *testing.T, nd *testNode, path, requestID string, body []byte) answer {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, nd.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post %s to %s: %v", path, nd.name, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return answer{status: resp.StatusCode, header: resp.Header, body: b}
}

// findForwarded scans candidates from start until entry answers one via
// a forward (optionally to a specific owner), returning the candidate
// index. Each probe caches its answer at the entry node, so callers must
// keep advancing start for fresh keys.
func findForwarded(t *testing.T, entry *testNode, start int, owner string) (int, answer) {
	t.Helper()
	for i := start; i < start+200; i++ {
		ans := postNode(t, entry, "/v1/predict", "", predictBody(i))
		if ans.status != http.StatusOK {
			t.Fatalf("probe %d: status %d, body %s", i, ans.status, ans.body)
		}
		if ans.header.Get(server.ClusterViaHeader) != "forward" {
			continue
		}
		if owner == "" || ans.header.Get(server.ClusterOwnerHeader) == owner {
			return i, ans
		}
	}
	t.Fatalf("no candidate owned by %q found in 200 probes", owner)
	return 0, answer{}
}

// TestByteIdenticalAcrossEntryNodes: the same request through every
// entry node yields byte-identical 200 bodies, computed exactly once —
// the first entry reports the owner's miss, every other entry either
// relays the owner's hit or hits its own replicated copy.
func TestByteIdenticalAcrossEntryNodes(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	body := predictBody(0)

	var answers []answer
	misses := 0
	for _, nd := range nodes {
		ans := postNode(t, nd, "/v1/predict", "", body)
		if ans.status != http.StatusOK {
			t.Fatalf("entry %s: status %d, body %s", nd.name, ans.status, ans.body)
		}
		if got := ans.header.Get(server.ClusterNodeHeader); got != nd.name {
			t.Errorf("entry %s: %s = %q", nd.name, server.ClusterNodeHeader, got)
		}
		if ans.header.Get("X-Cache") == "miss" {
			misses++
		}
		answers = append(answers, ans)
	}
	for i := 1; i < len(answers); i++ {
		if !bytes.Equal(answers[i].body, answers[0].body) {
			t.Errorf("entry %s body diverges from entry %s", nodes[i].name, nodes[0].name)
		}
	}
	if misses != 1 {
		t.Errorf("cluster-wide misses = %d, want exactly 1 computation", misses)
	}
}

// TestClusterWideSingleFlight: concurrent identical requests through
// different entry nodes still compute once — local waiters dedup onto
// their node's leader, leaders forward, and the owner's single-flight
// collapses the forwards.
func TestClusterWideSingleFlight(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	body := predictBody(1)

	const k = 12
	answers := make([]answer, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i] = postNode(t, nodes[i%len(nodes)], "/v1/predict", "", body)
		}(i)
	}
	wg.Wait()

	misses := 0
	for i, ans := range answers {
		if ans.status != http.StatusOK {
			t.Fatalf("call %d: status %d, body %s", i, ans.status, ans.body)
		}
		if !bytes.Equal(ans.body, answers[0].body) {
			t.Errorf("call %d body diverges", i)
		}
		if ans.header.Get("X-Cache") == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("cluster-wide misses = %d across %d concurrent calls, want 1", misses, k)
	}
}

// TestForwardCarriesRequestID: the owner sees the entry node's hop
// marker and the original request ID — a forwarded computation traces
// as one request end to end.
func TestForwardCarriesRequestID(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	entry := nodes[0]

	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("trace-%d", i)
		ans := postNode(t, entry, "/v1/predict", id, predictBody(i))
		if ans.status != http.StatusOK {
			t.Fatalf("probe %d: status %d", i, ans.status)
		}
		if ans.header.Get(server.ClusterViaHeader) != "forward" {
			continue
		}
		owner := ans.header.Get(server.ClusterOwnerHeader)
		for _, nd := range nodes[1:] {
			if nd.name != owner {
				continue
			}
			nd.mu.Lock()
			seen := append([]forwardSeen(nil), nd.forwarded...)
			nd.mu.Unlock()
			for _, f := range seen {
				if f.requestID == id {
					if f.origin != entry.name {
						t.Errorf("hop marker = %q, want %q", f.origin, entry.name)
					}
					if f.path != "/v1/predict" {
						t.Errorf("forwarded path = %q", f.path)
					}
					if echoed := ans.header.Get("X-Request-ID"); echoed != id {
						t.Errorf("entry echoed ID %q, want %q", echoed, id)
					}
					return
				}
			}
			t.Fatalf("owner %s never saw forwarded request ID %q", owner, id)
		}
	}
	t.Fatal("no forwarded candidate found in 200 probes")
}

// TestOwnerDeathFallsBack: killing a node's listener leaves its keys
// servable — forwards fail, the probe marks it down, and entry nodes
// compute locally. No request ever fails user-visibly.
func TestOwnerDeathFallsBack(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	entry := nodes[0]

	// Identify a victim that owns at least one candidate, then kill it.
	idx, ans := findForwarded(t, entry, 0, "")
	victim := ans.header.Get(server.ClusterOwnerHeader)
	var victimNode *testNode
	for _, nd := range nodes {
		if nd.name == victim {
			victimNode = nd
		}
	}
	victimNode.ts.Close()

	// Fresh keys owned by the dead node now fall back to local compute.
	sawFallback := false
	for i := idx + 1; i < idx+60; i++ {
		ans := postNode(t, entry, "/v1/predict", "", predictBody(i))
		if ans.status != http.StatusOK {
			t.Fatalf("candidate %d after owner death: status %d, body %s", i, ans.status, ans.body)
		}
		if ans.header.Get(server.ClusterViaHeader) == "fallback" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("no local fallback observed after killing an owner")
	}

	// A probe round records the death in the health view, and placement
	// stops offering the dead peer.
	entry.cl.Probe(context.Background())
	stats := entry.cl.Stats()
	peer := stats["peers"].(map[string]any)[victim].(map[string]any)
	if peer["healthy"].(bool) {
		t.Errorf("victim %s still marked healthy after probe", victim)
	}
}

// TestDrainingOwnerFallsBackNo429: while an owner drains, forwarded work
// is refused with the draining body and the entry node computes locally —
// the user keeps getting 200s from healthy entry nodes, never a 429.
func TestDrainingOwnerFallsBackNo429(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	entry := nodes[0]
	for _, nd := range nodes[1:] {
		nd.srv.BeginDrain()
	}

	sawFallback := false
	for i := 0; i < 40; i++ {
		ans := postNode(t, entry, "/v1/predict", "", predictBody(i))
		if ans.status != http.StatusOK {
			t.Fatalf("candidate %d with draining owners: status %d, body %s — draining leaked to the user", i, ans.status, ans.body)
		}
		if ans.header.Get(server.ClusterViaHeader) == "fallback" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("no candidate fell back; draining peers were never consulted")
	}
}

// TestReplicatedPlacement: with R=2, each key has two owners; an entry
// node that is the key's secondary serves it locally, and a forwarding
// entry has a second owner to try when the primary is down.
func TestReplicatedPlacement(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	entry := nodes[0]

	// Across many keys, some must place entry as a (primary or backup)
	// owner — via=local — and some must forward.
	locals, forwards := 0, 0
	for i := 0; i < 60; i++ {
		ans := postNode(t, entry, "/v1/predict", "", predictBody(i))
		if ans.status != http.StatusOK {
			t.Fatalf("candidate %d: status %d", i, ans.status)
		}
		switch ans.header.Get(server.ClusterViaHeader) {
		case "local":
			locals++
		case "forward":
			forwards++
		}
	}
	if locals == 0 || forwards == 0 {
		t.Fatalf("R=2 placement degenerate: locals=%d forwards=%d of 60", locals, forwards)
	}

	// Kill one peer: every key still has a usable owner or falls back;
	// all traffic stays 200.
	nodes[1].ts.Close()
	entry.cl.Probe(context.Background())
	for i := 60; i < 100; i++ {
		if ans := postNode(t, entry, "/v1/predict", "", predictBody(i)); ans.status != http.StatusOK {
			t.Fatalf("candidate %d after peer death: status %d", i, ans.status)
		}
	}
}

// TestStatsShape: the metrics bridge exposes ring ownership and peer
// health through the server's /metrics endpoint.
func TestStatsShape(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	entry := nodes[0]
	if _, err := http.Post(entry.ts.URL+"/v1/predict", "application/json", bytes.NewReader(predictBody(0))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(entry.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	cl, ok := snap["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("metrics carry no cluster section: %v", snap)
	}
	if cl["self"] != "n0" || cl["nodes"].(float64) != 3 {
		t.Errorf("cluster section = %v", cl)
	}
	own := cl["ownership_fraction"].(float64)
	peers := cl["peers"].(map[string]any)
	for _, p := range peers {
		own += p.(map[string]any)["ownership_fraction"].(float64)
	}
	if own < 0.999 || own > 1.001 {
		t.Errorf("ownership fractions sum to %v, want 1", own)
	}
	if _, ok := snap["forwards"]; !ok {
		t.Error("metrics missing per-peer forwards map")
	}
}

// TestNewRejectsBadMembership: config validation.
func TestNewRejectsBadMembership(t *testing.T) {
	if _, err := New(Config{Self: "a", Peers: map[string]string{"b": "http://x"}}); err == nil {
		t.Error("self outside peer set accepted")
	}
	if _, err := New(Config{Self: "a", Peers: map[string]string{"a": ""}}); err == nil {
		t.Error("empty peer URL accepted")
	}
	if _, err := New(Config{Self: "", Peers: map[string]string{"a": "http://x"}}); err == nil {
		t.Error("empty self accepted")
	}
}
