// Package cluster turns a set of chc-serve nodes into one sharded
// response cache: it implements server.PeerForwarder over a
// deterministic consistent-hash ring (internal/cluster/ring) and the
// resilient peer client (internal/client).
//
// Membership is static — the -peers flag names every node up front —
// but liveness is not: a gossip-free health view is maintained from
// periodic /readyz probes, and each peer link carries its own circuit
// breaker (via its dedicated client), so placement skips peers that are
// probed-down, draining, or tripping their breaker. The server's
// degradation rules (server/cluster.go) then fall back to local compute
// when no usable owner remains — correctness over placement.
//
// All nodes are configured with the same member list, virtual-node
// count, and seed, so they compute identical rings without exchanging a
// single message; that determinism is what makes one forwarding hop
// sufficient.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"memhier/internal/client"
	"memhier/internal/cluster/ring"
	"memhier/internal/server"
)

// Config describes one node's view of the cluster. Every node must be
// given the same Peers, Replicas, VirtualNodes, and Seed.
type Config struct {
	// Self is this node's name; it must be a key of Peers.
	Self string
	// Peers maps every member name — including Self — to its base URL
	// (e.g. "http://10.0.0.7:8080").
	Peers map[string]string
	// Replicas is the number of owners per key (default 1). With 2, a
	// key's primary and one successor both accept it, so a hot key
	// survives its primary and forwarded load splits under failure.
	Replicas int
	// VirtualNodes is the ring points per node (default
	// ring.DefaultPoints). Seed selects an independent placement.
	VirtualNodes int
	Seed         uint64
	// ProbeInterval is the /readyz health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// ClientOptions tunes the per-peer forwarding clients. The hop
	// marker header and single-base targeting are overlaid per peer;
	// retries default to 1 — the fallback ladder (next owner, then local
	// compute) is the real retry policy, so burning a full retry budget
	// per peer only adds latency.
	ClientOptions client.Options
}

// Cluster is one node's cluster state: the shared ring, one resilient
// client per peer, and the probed health view. It implements
// server.PeerForwarder. Safe for concurrent use.
type Cluster struct {
	self     string
	replicas int
	ring     *ring.Ring

	// clients and urls are immutable after New (no lock needed).
	clients map[string]*client.Client
	urls    map[string]string

	probeEvery   time.Duration
	probeTimeout time.Duration
	httpClient   *http.Client

	mu      sync.Mutex
	healthy map[string]bool   // guarded by mu; last probe verdict per peer
	lastErr map[string]string // guarded by mu; last probe failure per peer
	probes  uint64            // guarded by mu; completed probe rounds

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New validates the membership view and builds the node's cluster state.
// Call Start to begin background health probing (optional; peers start
// out presumed healthy, and the per-peer breakers catch dead ones on
// first contact).
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self name")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in peer set", cfg.Self)
	}
	names := make([]string, 0, len(cfg.Peers))
	for name, url := range cfg.Peers {
		if url == "" {
			return nil, fmt.Errorf("cluster: peer %q has no base URL", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	r, err := ring.New(ring.Config{Nodes: names, Points: cfg.VirtualNodes, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(names) {
		cfg.Replicas = len(names)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}

	c := &Cluster{
		self:         cfg.Self,
		replicas:     cfg.Replicas,
		ring:         r,
		clients:      make(map[string]*client.Client, len(names)-1),
		urls:         make(map[string]string, len(names)),
		probeEvery:   cfg.ProbeInterval,
		probeTimeout: cfg.ProbeTimeout,
		healthy:      make(map[string]bool, len(names)-1),
		lastErr:      make(map[string]string, len(names)-1),
		stop:         make(chan struct{}),
	}
	opts := cfg.ClientOptions
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 1
	}
	if opts.Header == nil {
		opts.Header = http.Header{}
	} else {
		opts.Header = opts.Header.Clone()
	}
	// Every forwarded request carries the hop marker: the receiver
	// computes locally and, when draining, answers the draining body the
	// client treats as non-retryable.
	opts.Header.Set(server.ForwardedHeader, cfg.Self)
	c.httpClient = opts.HTTPClient
	if c.httpClient == nil {
		c.httpClient = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	for _, name := range names {
		c.urls[name] = cfg.Peers[name]
		if name == cfg.Self {
			continue
		}
		c.clients[name] = client.New(cfg.Peers[name], opts)
		c.healthy[name] = true // presumed until a probe says otherwise
	}
	return c, nil
}

// Start launches background /readyz probing until Stop. It is a no-op
// for a single-node "cluster" (nothing to probe).
func (c *Cluster) Start() {
	if len(c.clients) == 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.probeEvery)
		defer t.Stop()
		c.Probe(context.Background())
		for {
			select {
			case <-t.C:
				c.Probe(context.Background())
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop ends background probing; idempotent.
func (c *Cluster) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Probe runs one health round: every peer's /readyz, in parallel,
// bounded by the probe timeout. A node that answers anything but 200 —
// including the draining 503 — is marked unusable for placement until a
// later round clears it.
func (c *Cluster) Probe(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for name := range c.clients {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			err := c.probeOne(ctx, name)
			c.mu.Lock()
			c.healthy[name] = err == nil
			if err != nil {
				c.lastErr[name] = err.Error()
			} else {
				delete(c.lastErr, name)
			}
			c.mu.Unlock()
		}(name)
	}
	wg.Wait()
	c.mu.Lock()
	c.probes++
	c.mu.Unlock()
}

// probeOne checks one peer's /readyz with the cluster's probe transport
// (not the forwarding client: a probe must not trip the data-path
// breaker, and must see draining as unready, not as an error to retry).
func (c *Cluster) probeOne(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urls[name]+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz returned %d", resp.StatusCode)
	}
	return nil
}

// ---- server.PeerForwarder ----

// Self returns this node's name.
func (c *Cluster) Self() string { return c.self }

// Place returns the usable owners of key, primary first, and whether
// this node is one of the key's owners. Peers that are probed-down or
// whose breaker is open are skipped — the caller's fallback ladder
// (remaining owners, then local compute) handles the rest.
func (c *Cluster) Place(key string) ([]string, bool) {
	owners := c.ring.Owners(key, c.replicas)
	usable := owners[:0]
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range owners {
		if name == c.self {
			return nil, true
		}
		if c.healthy[name] && !c.clients[name].BreakerOpen() {
			usable = append(usable, name)
		}
	}
	return usable, false
}

// Forward replays a canonical request body against peer's path with the
// original request ID. The peer client adds the hop marker, applies its
// (small) retry budget, and treats a draining answer as final.
//chc:hotpath
func (c *Cluster) Forward(ctx context.Context, peer, path, requestID string, body []byte) (server.ForwardResult, error) {
	cl, ok := c.clients[peer]
	if !ok {
		//chc:allow hotalloc -- cold path: misconfigured ring, request already failed
		return server.ForwardResult{}, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	//chc:allow hotalloc -- Call's body parameter is any by API contract; RawMessage avoids the re-encode, boxing one header is the floor
	meta, err := cl.Call(ctx, path, requestID, json.RawMessage(body), nil)
	if err != nil {
		return server.ForwardResult{}, err
	}
	return server.ForwardResult{Status: meta.Status, Cache: meta.Cache, Body: meta.Body}, nil
}

// Stats reports the node's cluster view for /metrics: ring ownership,
// per-peer health and breaker state, and probe progress.
func (c *Cluster) Stats() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	peers := make(map[string]any, len(c.clients))
	for name, cl := range c.clients {
		p := map[string]any{
			"healthy":            c.healthy[name],
			"breaker_open":       cl.BreakerOpen(),
			"ownership_fraction": c.ring.OwnershipFraction(name),
		}
		if msg, ok := c.lastErr[name]; ok {
			p["last_error"] = msg
		}
		peers[name] = p
	}
	return map[string]any{
		"self":               c.self,
		"replicas":           c.replicas,
		"nodes":              len(c.clients) + 1,
		"ownership_fraction": c.ring.OwnershipFraction(c.self),
		"probes":             c.probes,
		"peers":              peers,
	}
}
