package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"memhier/internal/server"
)

// BenchmarkClientRetry measures one logical call that fails once with a
// retryable 503 and succeeds on the retry — the client's failure-path
// overhead (error decoding, breaker bookkeeping, jitter computation) with
// backoff sleeps shrunk to stay out of the measurement.
func BenchmarkClientRetry(b *testing.B) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "injected", Code: "transient"})
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	c := New(ts.URL, Options{
		BaseBackoff:      time.Microsecond,
		MaxBackoff:       10 * time.Microsecond,
		FailureThreshold: -1,
		Seed:             1,
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta, err := c.Post(ctx, "/v1/predict", struct{}{}, nil)
		if err != nil {
			b.Fatalf("Post: %v", err)
		}
		if meta.Attempts != 2 {
			b.Fatalf("attempts = %d, want 2", meta.Attempts)
		}
	}
}

// BenchmarkClientHit measures the no-failure path: one attempt, decode,
// done.
func BenchmarkClientHit(b *testing.B) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hit")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := New(ts.URL, Options{Seed: 1})
	ctx := context.Background()
	var out map[string]bool
	// Warm up outside the measurement: the first call pays the TCP dial
	// (hundreds of µs) that connection reuse then amortizes away — without
	// this, a -benchtime=1x run reports the dial, not the steady state.
	if _, err := c.Post(ctx, "/v1/predict", struct{}{}, &out); err != nil {
		b.Fatalf("warm-up Post: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Post(ctx, "/v1/predict", struct{}{}, &out); err != nil {
			b.Fatalf("Post: %v", err)
		}
	}
}
