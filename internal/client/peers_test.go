package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"memhier/internal/server"
)

// deadBaseURL returns a URL nothing listens on: the port was bound and
// released, so dialing it fails fast with connection refused.
func deadBaseURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	return url
}

// okHandler answers 200 {} and records every X-Request-ID it sees.
type okHandler struct {
	mu  sync.Mutex
	ids []string // guarded by mu
}

func (h *okHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.ids = append(h.ids, r.Header.Get("X-Request-ID"))
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{}\n"))
}

func (h *okHandler) seen() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.ids...)
}

// TestFailoverPreservesRequestID: a call whose first entry node is dead
// fails over to the live one on the retry, carrying the same
// X-Request-ID — one call to the cluster, not two.
func TestFailoverPreservesRequestID(t *testing.T) {
	live := &okHandler{}
	ts := httptest.NewServer(live)
	defer ts.Close()

	c := NewMulti([]string{deadBaseURL(t), ts.URL}, Options{
		MaxRetries: 3, BaseBackoff: 1, MaxBackoff: 1,
	})
	meta, err := c.Post(context.Background(), "/v1/predict", map[string]any{}, nil)
	if err != nil {
		t.Fatalf("failover call failed: %v", err)
	}
	if meta.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one dead, one failover)", meta.Attempts)
	}
	ids := live.seen()
	if len(ids) != 1 || ids[0] != meta.RequestID {
		t.Fatalf("live node saw IDs %v, want exactly the call's ID %q", ids, meta.RequestID)
	}
}

// TestFailoverSharesRetryBudget: the retry budget is per call, not per
// base — two dead entry nodes split MaxRetries+1 attempts between them.
func TestFailoverSharesRetryBudget(t *testing.T) {
	c := NewMulti([]string{deadBaseURL(t), deadBaseURL(t)}, Options{
		MaxRetries: 2, BaseBackoff: 1, MaxBackoff: 1, FailureThreshold: -1,
	})
	meta, err := c.Post(context.Background(), "/v1/predict", map[string]any{}, nil)
	if err == nil {
		t.Fatal("call against two dead nodes succeeded")
	}
	if meta.Attempts != 3 {
		t.Fatalf("attempts = %d, want MaxRetries+1 = 3 shared across bases", meta.Attempts)
	}
}

// TestRoundRobinSpreadsCalls: successive calls start on successive entry
// nodes.
func TestRoundRobinSpreadsCalls(t *testing.T) {
	a, b := &okHandler{}, &okHandler{}
	tsA, tsB := httptest.NewServer(a), httptest.NewServer(b)
	defer tsA.Close()
	defer tsB.Close()

	c := NewMulti([]string{tsA.URL, tsB.URL}, Options{MaxRetries: 0})
	for i := 0; i < 6; i++ {
		if _, err := c.Post(context.Background(), "/x", map[string]any{}, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := len(a.seen()); got != 3 {
		t.Errorf("node A served %d calls, want 3 of 6", got)
	}
	if got := len(b.seen()); got != 3 {
		t.Errorf("node B served %d calls, want 3 of 6", got)
	}
}

// TestPeersSwapRetargets: Peers() replaces the entry set for new calls.
func TestPeersSwapRetargets(t *testing.T) {
	a, b := &okHandler{}, &okHandler{}
	tsA, tsB := httptest.NewServer(a), httptest.NewServer(b)
	defer tsA.Close()
	defer tsB.Close()

	c := New(tsA.URL, Options{MaxRetries: 0})
	if _, err := c.Post(context.Background(), "/x", map[string]any{}, nil); err != nil {
		t.Fatal(err)
	}
	c.Peers([]string{tsB.URL})
	if _, err := c.Post(context.Background(), "/x", map[string]any{}, nil); err != nil {
		t.Fatal(err)
	}
	if len(a.seen()) != 1 || len(b.seen()) != 1 {
		t.Fatalf("calls split A=%d B=%d, want 1 and 1", len(a.seen()), len(b.seen()))
	}
}

// TestDrainingNotRetried: a 429 whose code is "draining" is a deliberate
// answer from a node that is going away — the client returns it
// immediately instead of burning its retry budget against the drain.
func TestDrainingNotRetried(t *testing.T) {
	var calls int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorResponse{
			Error: "server: draining: not accepting new work",
			Code:  server.CodeDraining, RequestID: "x", RetryAfterSeconds: 1,
		})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{MaxRetries: 3, BaseBackoff: 1, MaxBackoff: 1})
	meta, err := c.Post(context.Background(), "/v1/predict", map[string]any{}, nil)
	if err == nil {
		t.Fatal("draining answer reported as success")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeDraining {
		t.Fatalf("error %v, want APIError with code draining", err)
	}
	if meta.Attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1 wire attempt against a draining node", meta.Attempts, calls)
	}
	if c.BreakerOpen() {
		t.Fatal("draining answer opened the breaker")
	}
}

// TestCallCarriesExplicitID: Call stamps the caller's request ID on the
// wire (the peer-forwarding hop rides this).
func TestCallCarriesExplicitID(t *testing.T) {
	live := &okHandler{}
	ts := httptest.NewServer(live)
	defer ts.Close()

	c := New(ts.URL, Options{MaxRetries: 0, Header: http.Header{"X-Chc-Forwarded": {"node-a"}}})
	const id = "deadbeef-42"
	if _, err := c.Call(context.Background(), "/v1/predict", id, map[string]any{}, nil); err != nil {
		t.Fatal(err)
	}
	if ids := live.seen(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("server saw IDs %v, want [%q]", ids, id)
	}
}

// TestHeaderOptionApplied: Options.Header reaches the wire on every
// attempt.
func TestHeaderOptionApplied(t *testing.T) {
	var mu sync.Mutex
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, r.Header.Get("X-Chc-Forwarded"))
		mu.Unlock()
		fmt.Fprint(w, "{}")
	}))
	defer ts.Close()

	c := New(ts.URL, Options{MaxRetries: 0, Header: http.Header{"X-Chc-Forwarded": {"origin-1"}}})
	if _, err := c.Post(context.Background(), "/x", map[string]any{}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "origin-1" {
		t.Fatalf("server saw forwarded markers %v, want [origin-1]", got)
	}
}
