package client

// Streaming grid calls: Sweep and Batch consume the server's NDJSON
// point streams. The server emits lines in point-index order and closes
// every stream with a summary trailer, which makes resumption exact: on
// a transport failure (or a server-side deadline, signaled by a trailer
// with Complete=false) the client re-requests with Offset set to the
// first point it has not received — only the un-received tail is
// retried, never already-delivered points. Totals are accumulated
// client-side from the lines themselves, so a multi-segment stream
// reports the same counters a single uninterrupted one would.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"memhier/internal/server"
)

// StreamResult summarizes a consumed sweep/batch stream across every
// segment it took to deliver it.
type StreamResult struct {
	Points      int // grid size reported by the server
	Received    int // result lines delivered to the callback
	Errors      int // lines carrying a per-point error
	CacheHits   int
	CacheMisses int
	DedupWaits  int
	Segments    int    // 200 responses consumed (1 = no resume was needed)
	Attempts    int    // wire attempts, including shed and failed ones
	RequestID   string // constant across all segments of the call
}

// Sweep calls /v1/sweep and invokes fn for each result line, in point
// order, exactly once per point — across transport failures, which are
// resumed from the first missing point. A nil fn just drives the stream
// for its counters. An fn error aborts the call without retrying.
func (c *Client) Sweep(ctx context.Context, req server.SweepRequest, fn func(server.SweepLine) error) (StreamResult, error) {
	return c.stream(ctx, "/v1/sweep", req.Offset, func(offset int) any {
		r := req
		r.Offset = offset
		return r
	}, fn)
}

// Batch calls /v1/batch with the same streaming and resume semantics as
// Sweep.
func (c *Client) Batch(ctx context.Context, req server.BatchRequest, fn func(server.SweepLine) error) (StreamResult, error) {
	return c.stream(ctx, "/v1/batch", req.Offset, func(offset int) any {
		r := req
		r.Offset = offset
		return r
	}, fn)
}

// callbackError marks an error raised by the caller's line callback:
// it aborts the stream and is never retried.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// stream drives segments until the grid is fully delivered. Retry
// policy mirrors Post — breaker, full-jitter backoff, Retry-After on
// shed segments — with one streaming-specific twist: a segment that
// delivered new lines resets the retry budget, so a long grid is never
// abandoned because its *total* interruptions exceeded MaxRetries; only
// MaxRetries consecutive zero-progress attempts give up.
func (c *Client) stream(ctx context.Context, path string, offset int, build func(int) any, fn func(server.SweepLine) error) (StreamResult, error) {
	id := c.nextRequestID()
	res := StreamResult{RequestID: id}
	next := offset
	retriesLeft := c.opts.MaxRetries
	start := c.cursor.Add(1) - 1
	failovers := 0
	var lastErr error

	for attempt := 0; ; attempt++ {
		if err := c.breaker.allow(); err != nil {
			if lastErr != nil {
				return res, fmt.Errorf("%w (last failure: %w)", err, lastErr)
			}
			return res, err
		}
		body, err := json.Marshal(build(next))
		if err != nil {
			return res, fmt.Errorf("client: encoding %s request: %w", path, err)
		}
		res.Attempts++
		before := next
		done, err := c.streamSegment(ctx, c.pickBase(start, failovers), path, id, body, &res, &next, fn)
		switch {
		case done:
			c.breaker.success()
			return res, nil
		case err == nil:
			// Well-formed but incomplete: the server's deadline cut the
			// stream and said so in the trailer. That is contract-following
			// behavior, not a failure — resume the tail.
			c.breaker.success()
		case ctx.Err() != nil:
			// The caller's deadline, not the server's health.
			return res, fmt.Errorf("client: %s: %w", path, ctx.Err())
		default:
			var abort *callbackError
			if errors.As(err, &abort) {
				c.breaker.success()
				return res, abort.err
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) && !retryable(apiErr.Status) {
				// A well-formed rejection closes the breaker like a success.
				c.breaker.success()
				return res, fmt.Errorf("client: %s: %w", path, apiErr)
			}
			if apiErr == nil {
				// Transport-level failure: the resumed tail goes to the
				// next entry node (a no-op with a single base).
				failovers++
			}
			c.breaker.failure()
			lastErr = fmt.Errorf("client: %s: %w", path, err)
		}

		if next > before {
			retriesLeft = c.opts.MaxRetries
			continue // progress: resume immediately, budget refreshed
		}
		if retriesLeft == 0 {
			if lastErr != nil {
				return res, lastErr
			}
			return res, fmt.Errorf("client: %s: stream stalled at point %d with no progress", path, next)
		}
		retriesLeft--
		if err := c.sleepBackoff(ctx, attempt, retryAfterOf(lastErr)); err != nil {
			return res, err
		}
	}
}

// streamSegment performs one wire attempt and consumes its NDJSON body.
// It returns done=true when the summary trailer confirmed the full grid
// was delivered, and (false, nil) when a well-formed trailer reported an
// incomplete stream. next advances past every line delivered to fn, so
// the caller resumes exactly at the first missing point.
func (c *Client) streamSegment(ctx context.Context, base, path, id string, body []byte, res *StreamResult, next *int, fn func(server.SweepLine) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	for k, vs := range c.opts.Header {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		if ob := c.opts.Observer; ob != nil {
			ob(Attempt{Path: path, RequestID: id, Err: err})
		}
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if ob := c.opts.Observer; ob != nil {
			ob(Attempt{Path: path, RequestID: id, Status: resp.StatusCode, Header: resp.Header, Body: b})
		}
		return false, decodeAPIError(resp.StatusCode, resp.Header, b)
	}
	if ob := c.opts.Observer; ob != nil {
		// Streaming bodies are not buffered for the observer.
		ob(Attempt{Path: path, RequestID: id, Status: resp.StatusCode, Header: resp.Header})
	}
	res.Segments++

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return false, fmt.Errorf("undecodable stream line at point %d: %w", *next, err)
		}
		if probe.Kind == "summary" {
			var sum server.SweepSummary
			if err := json.Unmarshal(raw, &sum); err != nil {
				return false, fmt.Errorf("undecodable summary trailer: %w", err)
			}
			res.Points = sum.Points
			if !sum.Complete {
				return false, nil // server deadline: resume the tail
			}
			if *next != sum.Points {
				return false, fmt.Errorf("summary claims completion after %d of %d points", *next, sum.Points)
			}
			return true, nil
		}
		var line server.SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return false, fmt.Errorf("undecodable %s line at point %d: %w", probe.Kind, *next, err)
		}
		if line.Index < *next {
			continue // already delivered by an earlier segment
		}
		if line.Index != *next {
			return false, fmt.Errorf("stream skipped from point %d to %d", *next, line.Index)
		}
		*next = line.Index + 1
		res.Received++
		switch line.Cache {
		case "hit":
			res.CacheHits++
		case "miss":
			res.CacheMisses++
		case "dedup":
			res.DedupWaits++
		}
		if line.Error != nil {
			res.Errors++
		}
		if fn != nil {
			if err := fn(line); err != nil {
				return false, &callbackError{err: err}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("stream truncated at point %d: %w", *next, err)
	}
	return false, fmt.Errorf("stream ended without a summary at point %d", *next)
}
