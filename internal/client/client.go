// Package client is the resilient Go client for the chc-serve service:
// typed calls for every API endpoint with transparent retries,
// exponential backoff with full jitter, Retry-After honoring on 429
// shedding responses, and a consecutive-failure circuit breaker that
// fails fast while the service is down instead of piling retries onto it.
//
// A client can front a whole cluster instead of one node: NewMulti (or
// Peers on an existing client) installs a set of entry base URLs that
// calls round-robin over, and a transport-level failure fails over to
// the next entry node on the very next attempt — under the same retry
// budget and carrying the same X-Request-ID, so a failed-over call is
// still one call to the cluster.
//
// Defaults (all overridable via Options): 3 retries (4 attempts total),
// backoff base 50ms doubling per attempt with full jitter, capped at 2s;
// a server-supplied Retry-After extends the pause up to 5s; the breaker
// opens after 5 consecutive failed attempts and stays open for 2s, then
// lets one probe through (success closes it, failure reopens).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memhier/internal/server"
)

// Options tunes a Client. The zero value selects the documented defaults.
type Options struct {
	// MaxRetries is the number of re-attempts after the first try
	// (default 3; negative means no retries).
	MaxRetries int
	// BaseBackoff is the first-retry backoff ceiling; attempt n waits a
	// uniformly random duration in [0, min(MaxBackoff, BaseBackoff·2ⁿ)]
	// — "full jitter" (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the jitter ceiling (default 2s).
	MaxBackoff time.Duration
	// RetryAfterCap bounds how long a server-supplied Retry-After is
	// honored (default 5s): a hinted pause longer than this waits only
	// the cap.
	RetryAfterCap time.Duration
	// FailureThreshold is the number of consecutive failed attempts that
	// opens the circuit breaker (default 5; negative disables the breaker).
	FailureThreshold int
	// OpenFor is how long an open breaker rejects calls before letting a
	// probe through (default 2s).
	OpenFor time.Duration
	// HTTPClient overrides the transport (the chaos harness injects an
	// in-process one). The default is a dedicated client whose transport
	// keeps idle connections per host well above http.DefaultClient's 2,
	// so concurrent callers reuse connections instead of redialing.
	HTTPClient *http.Client
	// Seed seeds the jitter and request-ID generator (0 = 1): a seeded
	// client produces a deterministic backoff schedule.
	Seed int64
	// Header is added to every outgoing request (the cluster forwarding
	// layer stamps its hop marker here). Values are set, not appended.
	Header http.Header
	// Observer, when set, sees every wire attempt — including ones that
	// are later retried. The chaos harness uses it to check invariants on
	// each response, not just the final one.
	Observer func(Attempt)
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.RetryAfterCap <= 0 {
		o.RetryAfterCap = 5 * time.Second
	}
	if o.FailureThreshold == 0 {
		o.FailureThreshold = 5
	} else if o.FailureThreshold < 0 {
		o.FailureThreshold = 0 // disabled
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 2 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = defaultHTTPClient
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// defaultHTTPClient replaces http.DefaultClient as the default transport:
// the shared default keeps only 2 idle connections per host, so a client
// fanning calls out over a handful of goroutines redials — and pays a TCP
// handshake — on most requests. The service is a single-host API; keep
// enough idle connections for real concurrency.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 100,
		IdleConnTimeout:     90 * time.Second,
	},
}

// ErrCircuitOpen is returned (wrapped) while the breaker is open: the
// call failed fast without touching the network.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// APIError is a non-2xx response decoded into the service's error
// contract. It is returned (wrapped) when retries are exhausted or the
// status is not retryable.
type APIError struct {
	Status      int     // HTTP status
	Code        string  // machine-readable error class
	Message     string  // human-readable error text
	RequestID   string  // the ID echoed by the server
	Rho         float64 // utilization, on saturation rejections
	RetryAfter  int     // seconds, on 429 shedding responses
	ContentType string  // response Content-Type (the contract says JSON)
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// Attempt is one wire exchange, reported to Options.Observer.
type Attempt struct {
	Path      string
	RequestID string // the ID sent (constant across retries of one call)
	Status    int    // 0 when the attempt failed before a response
	Header    http.Header
	Body      []byte // response body (nil when Err is a transport error)
	Err       error  // transport error, if any
}

// Meta describes how a successful call was answered.
type Meta struct {
	Status    int
	Attempts  int    // wire attempts made (1 = no retries needed)
	RequestID string // the ID this call carried
	Cache     string // X-Cache: hit, miss, or dedup (API endpoints)
	Body      []byte // raw response bytes (byte-identical across cache hits)
}

// Client is a resilient chc-serve client; safe for concurrent use.
type Client struct {
	opts Options

	mu    sync.Mutex
	rng   *rand.Rand // guarded by mu
	bases []string   // guarded by mu; entry base URLs, round-robined

	cursor  atomic.Uint64 // round-robin position over bases
	breaker breaker
	ids     atomic.Uint64
}

// New builds a Client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts Options) *Client {
	return NewMulti([]string{baseURL}, opts)
}

// NewMulti builds a Client that spreads calls over several entry nodes:
// each call starts at the next base URL in round-robin order, and a
// transport-level failure fails over to the next one for the retry. An
// empty list panics — a client with nowhere to send requests is a
// programming error, not a runtime condition.
func NewMulti(baseURLs []string, opts Options) *Client {
	if len(baseURLs) == 0 {
		panic("client: NewMulti with no base URLs")
	}
	opts = opts.withDefaults()
	c := &Client{
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		breaker: breaker{
			threshold: opts.FailureThreshold,
			openFor:   opts.OpenFor,
		},
	}
	c.setBases(baseURLs)
	return c
}

// Peers replaces the client's entry-node set (e.g. after cluster
// membership changed). In-flight calls finish against the bases they
// started with; new calls round-robin over the new set.
func (c *Client) Peers(baseURLs []string) {
	if len(baseURLs) == 0 {
		panic("client: Peers with no base URLs")
	}
	c.setBases(baseURLs)
}

func (c *Client) setBases(baseURLs []string) {
	bases := make([]string, len(baseURLs))
	for i, u := range baseURLs {
		bases[i] = strings.TrimRight(u, "/")
	}
	c.mu.Lock()
	c.bases = bases
	c.mu.Unlock()
}

// pickBase resolves the base URL of one wire attempt: calls start at the
// next round-robin position, and every transport-level failover advances
// one more position.
func (c *Client) pickBase(start uint64, failovers int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[(start+uint64(failovers))%uint64(len(c.bases))]
}

// ---- typed endpoint calls ----

// Predict calls /v1/predict.
func (c *Client) Predict(ctx context.Context, req server.PredictRequest) (server.PredictResponse, Meta, error) {
	var resp server.PredictResponse
	meta, err := c.Post(ctx, "/v1/predict", req, &resp)
	return resp, meta, err
}

// Optimize calls /v1/optimize.
func (c *Client) Optimize(ctx context.Context, req server.OptimizeRequest) (server.OptimizeResponse, Meta, error) {
	var resp server.OptimizeResponse
	meta, err := c.Post(ctx, "/v1/optimize", req, &resp)
	return resp, meta, err
}

// Advise calls /v1/advise.
func (c *Client) Advise(ctx context.Context, req server.AdviseRequest) (server.AdviseResponse, Meta, error) {
	var resp server.AdviseResponse
	meta, err := c.Post(ctx, "/v1/advise", req, &resp)
	return resp, meta, err
}

// Fit calls /v1/fit.
func (c *Client) Fit(ctx context.Context, req server.FitRequest) (server.FitResponse, Meta, error) {
	var resp server.FitResponse
	meta, err := c.Post(ctx, "/v1/fit", req, &resp)
	return resp, meta, err
}

// Validate calls /v1/validate (the simulation-backed endpoint; expect
// longer latencies and 429 shedding under load).
func (c *Client) Validate(ctx context.Context, req server.ValidateRequest) (server.ValidateResponse, Meta, error) {
	var resp server.ValidateResponse
	meta, err := c.Post(ctx, "/v1/validate", req, &resp)
	return resp, meta, err
}

// Ready reports whether the service answers /readyz with 200 (the next
// round-robin entry node, on a multi-base client).
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.pickBase(c.cursor.Add(1)-1, 0)+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: readyz returned %d", resp.StatusCode)
	}
	return nil
}

// Post sends one JSON request to path, retrying retryable failures, and
// decodes the 200 body into out (skipped when out is nil). All retries of
// one call carry the same X-Request-ID.
func (c *Client) Post(ctx context.Context, path string, in, out any) (Meta, error) {
	return c.Call(ctx, path, c.nextRequestID(), in, out)
}

// Call is Post with a caller-chosen X-Request-ID: the cluster forwarding
// layer uses it to carry the original request's ID across the peer hop,
// so a forwarded computation traces as one request end to end. The ID is
// constant across retries and failovers.
func (c *Client) Call(ctx context.Context, path, requestID string, in, out any) (Meta, error) {
	// A RawMessage body is sent as-is: the peer forwarder replays
	// canonical JSON it already holds, and re-encoding it would only
	// validate and copy bytes on the forwarding hot path.
	body, ok := in.(json.RawMessage)
	if !ok {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return Meta{}, fmt.Errorf("client: encoding %s request: %w", path, err)
		}
	}
	id := requestID
	meta := Meta{RequestID: id}
	start := c.cursor.Add(1) - 1
	failovers := 0

	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.breaker.allow(); err != nil {
			if lastErr != nil {
				return meta, fmt.Errorf("%w (last failure: %w)", err, lastErr)
			}
			return meta, err
		}
		meta.Attempts++
		status, header, respBody, err := c.roundTrip(ctx, c.pickBase(start, failovers), path, id, body)
		if ob := c.opts.Observer; ob != nil {
			ob(Attempt{Path: path, RequestID: id, Status: status, Header: header, Body: respBody, Err: err})
		}

		switch {
		case err != nil:
			// Transport-level failure. Context expiry is the caller's
			// deadline, not the server's health: don't retry, don't count
			// it against the breaker. Other transport failures fail over:
			// the retry goes to the next entry node (a no-op with one base).
			if ctx.Err() != nil {
				return meta, fmt.Errorf("client: %s: %w", path, ctx.Err())
			}
			failovers++
			c.breaker.failure()
			lastErr = fmt.Errorf("client: %s: %w", path, err)
		case status >= 200 && status < 300:
			c.breaker.success()
			meta.Status = status
			meta.Cache = header.Get("X-Cache")
			meta.Body = respBody
			if out != nil {
				if err := json.Unmarshal(respBody, out); err != nil {
					return meta, fmt.Errorf("client: decoding %s response: %w", path, err)
				}
			}
			return meta, nil
		default:
			apiErr := decodeAPIError(status, header, respBody)
			meta.Status = status
			if !retryable(status) || apiErr.Code == server.CodeDraining {
				// A well-formed rejection (4xx) is not a service failure:
				// it closes the breaker like a success. Draining is the
				// same deliberate kind of answer — the node is going away
				// and will not recover within a retry budget, so callers
				// (the peer forwarder above all) should fall back now, not
				// burn retries against it.
				c.breaker.success()
				return meta, fmt.Errorf("client: %s: %w", path, apiErr)
			}
			c.breaker.failure()
			lastErr = fmt.Errorf("client: %s: %w", path, apiErr)
		}

		if attempt >= c.opts.MaxRetries {
			return meta, lastErr
		}
		if err := c.sleepBackoff(ctx, attempt, retryAfterOf(lastErr)); err != nil {
			return meta, err
		}
	}
}

// retryable reports whether a status is worth retrying: shedding (429)
// and server-side failures (500, 502, 503, 504).
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// roundTrip performs one wire attempt against base.
func (c *Client) roundTrip(ctx context.Context, base, path, id string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	for k, vs := range c.opts.Header {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := readBody(resp)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, b, nil
}

// readBody drains a response. When the server declared a (sane) length,
// one exact-size allocation replaces io.ReadAll's doubling growth — on the
// hot cached-predict path that is most of the per-call garbage.
func readBody(resp *http.Response) ([]byte, error) {
	n := resp.ContentLength
	if n < 0 || n > 1<<20 {
		return io.ReadAll(resp.Body)
	}
	buf := bytes.NewBuffer(make([]byte, 0, n+1))
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeAPIError turns a non-2xx response into an APIError, tolerating
// bodies that violate the JSON contract (the message then carries a
// snippet so the violation is visible).
func decodeAPIError(status int, header http.Header, body []byte) *APIError {
	apiErr := &APIError{
		Status:      status,
		ContentType: header.Get("Content-Type"),
		RequestID:   header.Get("X-Request-ID"),
	}
	if ra := header.Get("Retry-After"); ra != "" {
		apiErr.RetryAfter = parseRetryAfter(ra)
	}
	var resp server.ErrorResponse
	if err := json.Unmarshal(body, &resp); err == nil && resp.Error != "" {
		apiErr.Message = resp.Error
		apiErr.Code = resp.Code
		apiErr.Rho = resp.Rho
		if apiErr.RequestID == "" {
			apiErr.RequestID = resp.RequestID
		}
		if apiErr.RetryAfter == 0 && resp.RetryAfterSeconds > 0 {
			apiErr.RetryAfter = resp.RetryAfterSeconds
		}
	} else {
		snippet := body
		if len(snippet) > 120 {
			snippet = snippet[:120]
		}
		apiErr.Message = fmt.Sprintf("non-JSON error body: %q", snippet)
	}
	return apiErr
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110:
// either delay-seconds or an HTTP-date. The result is a usable pause —
// never negative. A server (or middlebox) sending "-5" must not turn into
// a 5-second-early retry storm, and a date in the past means "now", so
// both clamp to 0; a value in neither form is explicitly treated as
// absent rather than silently half-parsed.
func parseRetryAfter(ra string) int {
	if n, err := strconv.Atoi(strings.TrimSpace(ra)); err == nil {
		if n < 0 {
			return 0
		}
		return n
	}
	if at, err := http.ParseTime(ra); err == nil {
		d := time.Until(at)
		if d <= 0 {
			return 0
		}
		return int((d + time.Second - 1) / time.Second)
	}
	return 0 // unparseable: no hint
}

// retryAfterOf extracts the server's Retry-After hint from a wrapped
// APIError (0 when absent).
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return time.Duration(apiErr.RetryAfter) * time.Second
	}
	return 0
}

// sleepBackoff waits before retry number attempt+1: full-jitter
// exponential backoff, extended to the server's Retry-After hint (capped)
// when that is longer, abandoned early if ctx expires.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	ceiling := c.opts.BaseBackoff << uint(attempt)
	if ceiling > c.opts.MaxBackoff || ceiling <= 0 {
		ceiling = c.opts.MaxBackoff
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceiling) + 1))
	c.mu.Unlock()
	if retryAfter > c.opts.RetryAfterCap {
		retryAfter = c.opts.RetryAfterCap
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d == 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: backoff interrupted: %w", ctx.Err())
	}
}

// nextRequestID returns a process-unique ID: a seeded random prefix (so
// concurrent chaos runs don't collide) plus a per-client counter. Built
// by hand — fmt.Sprintf costs several allocations per call on a path
// that otherwise allocates nothing.
func (c *Client) nextRequestID() string {
	c.mu.Lock()
	prefix := uint32(c.rng.Uint64())
	c.mu.Unlock()
	const hexdigits = "0123456789abcdef"
	b := make([]byte, 0, 32)
	b = append(b, 'c')
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, hexdigits[(prefix>>uint(shift))&0xf])
	}
	b = append(b, '-')
	b = strconv.AppendUint(b, c.ids.Add(1), 10)
	return string(b)
}

// ---- circuit breaker ----

// breaker is a consecutive-failure circuit breaker. Closed: calls flow,
// each failed attempt increments the streak, a success resets it. At
// threshold the breaker opens: calls fail fast with ErrCircuitOpen for
// openFor. After openFor the next call is the probe (half-open): success
// closes the breaker, failure reopens it for another openFor.
type breaker struct {
	threshold int // 0 = disabled
	openFor   time.Duration

	mu          sync.Mutex
	consecutive int       // guarded by mu
	openUntil   time.Time // guarded by mu; zero = closed
	probing     bool      // guarded by mu; a half-open probe is in flight
}

func (b *breaker) allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return nil
	}
	if time.Now().Before(b.openUntil) {
		return ErrCircuitOpen
	}
	// Open period elapsed: admit one probe, hold everyone else.
	if b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive++
	if b.probing || b.consecutive >= b.threshold {
		b.openUntil = time.Now().Add(b.openFor)
		b.probing = false
	}
	b.mu.Unlock()
}

// state reports the breaker for tests: open is whether calls would fail
// fast right now.
func (b *breaker) state() (open bool, consecutive int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openUntil.IsZero() && time.Now().Before(b.openUntil) {
		open = true
	}
	return open, b.consecutive
}

// BreakerOpen reports whether the client's circuit breaker is currently
// rejecting calls (for tests and the chaos harness's reporting).
func (c *Client) BreakerOpen() bool {
	open, _ := c.breaker.state()
	return open
}
