package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memhier/internal/server"
)

// newSweepServer starts a real chc-serve instance for streaming tests.
func newSweepServer(t testing.TB, cfg server.Config) *httptest.Server {
	t.Helper()
	s := server.New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func compactJSON(t *testing.T, b []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.String()
}

// TestSweepStreamMatchesPredict: every predict line a Sweep delivers is
// byte-identical (as compact JSON) to the body of the equivalent
// /v1/predict call, and budget lines carry the eq. 6 winners.
func TestSweepStreamMatchesPredict(t *testing.T) {
	ts := newSweepServer(t, server.Config{})
	c := New(ts.URL, fastOpts())
	ctx := context.Background()

	cfgs := []server.ConfigSpec{{Name: "C4"}, {Name: "C8"}}
	wls := []server.WorkloadSpec{{Name: "fft"}, {Name: "lu"}}
	req := server.SweepRequest{Configs: cfgs, Workloads: wls, Budgets: []float64{5000, 8000}}

	var lines []server.SweepLine
	res, err := c.Sweep(ctx, req, func(l server.SweepLine) error {
		lines = append(lines, l)
		return nil
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	wantPoints := len(cfgs)*len(wls) + len(wls)
	if res.Points != wantPoints || res.Received != wantPoints {
		t.Fatalf("points = %d received = %d, want %d", res.Points, res.Received, wantPoints)
	}
	if res.Segments != 1 || res.Errors != 0 {
		t.Fatalf("segments = %d errors = %d, want 1/0", res.Segments, res.Errors)
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d: stream out of order", i, l.Index)
		}
	}
	// Predict points: compare against individual calls (cache-warmed by the
	// sweep, so the bytes are the very same entry).
	for ci, cfg := range cfgs {
		for wi, wl := range wls {
			line := lines[ci*len(wls)+wi]
			if line.Kind != "predict" {
				t.Fatalf("point %d kind = %q", line.Index, line.Kind)
			}
			_, meta, err := c.Predict(ctx, server.PredictRequest{Config: cfg, Workload: wl})
			if err != nil {
				t.Fatalf("Predict %s/%s: %v", cfg.Name, wl.Name, err)
			}
			if meta.Cache != "hit" {
				t.Fatalf("predict after sweep missed the cache: %q", meta.Cache)
			}
			if got, want := string(line.Response), compactJSON(t, meta.Body); got != want {
				t.Fatalf("sweep point %s/%s diverges from predict:\nsweep:   %s\npredict: %s",
					cfg.Name, wl.Name, got, want)
			}
		}
	}
	// Budget points: one per workload, two budgets each.
	for wi, wl := range wls {
		line := lines[len(cfgs)*len(wls)+wi]
		if line.Kind != "budget" {
			t.Fatalf("point %d kind = %q, want budget", line.Index, line.Kind)
		}
		var bs server.BudgetSweepResponse
		if err := json.Unmarshal(line.Response, &bs); err != nil {
			t.Fatalf("budget line: %v", err)
		}
		// Workload carries the resolved display name (e.g. "FFT" for "fft").
		if !strings.EqualFold(bs.Workload, wl.Name) || len(bs.Points) != 2 {
			t.Fatalf("budget line = %s/%d points, want %s/2", bs.Workload, len(bs.Points), wl.Name)
		}
	}
}

// TestBatchStreamMixedPoints: an invalid batch point becomes an error
// line; the rest of the batch still answers, matching predict bytes.
func TestBatchStreamMixedPoints(t *testing.T) {
	ts := newSweepServer(t, server.Config{})
	c := New(ts.URL, fastOpts())
	ctx := context.Background()

	req := server.BatchRequest{Requests: []server.PredictRequest{
		{Config: server.ConfigSpec{Name: "C4"}, Workload: server.WorkloadSpec{Name: "fft"}},
		{Config: server.ConfigSpec{Name: "C99"}, Workload: server.WorkloadSpec{Name: "fft"}},
		{Config: server.ConfigSpec{Name: "C8"}, Workload: server.WorkloadSpec{Name: "tpcc"}, Delta: 0.124},
	}}
	var lines []server.SweepLine
	res, err := c.Batch(ctx, req, func(l server.SweepLine) error {
		lines = append(lines, l)
		return nil
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if res.Received != 3 || res.Errors != 1 {
		t.Fatalf("received = %d errors = %d, want 3/1", res.Received, res.Errors)
	}
	if lines[1].Error == nil || lines[1].Status != http.StatusBadRequest {
		t.Fatalf("invalid point line = %+v, want a 400 error line", lines[1])
	}
	for _, i := range []int{0, 2} {
		_, meta, err := c.Predict(ctx, req.Requests[i])
		if err != nil {
			t.Fatalf("Predict point %d: %v", i, err)
		}
		if got, want := string(lines[i].Response), compactJSON(t, meta.Body); got != want {
			t.Fatalf("batch point %d diverges from predict", i)
		}
	}
}

// lineLimiter passes through a fixed number of body writes (the server
// encodes one NDJSON line per write) and then fails, simulating a
// connection dying mid-stream at a line boundary.
type lineLimiter struct {
	http.ResponseWriter
	writesLeft int
}

func (l *lineLimiter) Write(b []byte) (int, error) {
	if l.writesLeft <= 0 {
		return 0, errors.New("injected mid-stream failure")
	}
	l.writesLeft--
	return l.ResponseWriter.Write(b)
}

func (l *lineLimiter) Flush() {
	if f, ok := l.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestSweepResumesAfterTruncation: a stream cut after two lines is
// resumed with Offset at the first missing point — the tail segment
// re-requests only points 2..3 and every point is delivered exactly once.
func TestSweepResumesAfterTruncation(t *testing.T) {
	s := server.New(server.Config{})
	t.Cleanup(s.Close)
	inner := s.Handler()
	var calls atomic.Int64
	var offsets []int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.SweepRequest
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req)
		offsets = append(offsets, req.Offset)
		r.Body = io.NopCloser(bytes.NewReader(body))
		if calls.Add(1) == 1 {
			inner.ServeHTTP(&lineLimiter{ResponseWriter: w, writesLeft: 2}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, fastOpts())
	req := server.SweepRequest{
		Configs:   []server.ConfigSpec{{Name: "C4"}, {Name: "C8"}},
		Workloads: []server.WorkloadSpec{{Name: "fft"}, {Name: "lu"}},
	}
	var indices []int
	res, err := c.Sweep(context.Background(), req, func(l server.SweepLine) error {
		indices = append(indices, l.Index)
		return nil
	})
	if err != nil {
		t.Fatalf("Sweep across truncation: %v", err)
	}
	if res.Segments != 2 {
		t.Fatalf("segments = %d, want 2", res.Segments)
	}
	if res.Received != 4 || res.Points != 4 {
		t.Fatalf("received = %d of %d, want 4 of 4", res.Received, res.Points)
	}
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("delivery order %v: point delivered twice or skipped", indices)
		}
	}
	if len(offsets) != 2 || offsets[0] != 0 || offsets[1] != 2 {
		t.Fatalf("request offsets = %v, want [0 2]: resume must re-request only the tail", offsets)
	}
	if c.BreakerOpen() {
		t.Fatal("a resumed stream should not leave the breaker open")
	}
}

// TestSweepResumesAfterIncompleteSummary: a trailer with complete=false
// (the server's deadline) triggers an immediate tail resume without
// counting against the retry budget or the breaker.
func TestSweepResumesAfterIncompleteSummary(t *testing.T) {
	var offsets []int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.SweepRequest
		json.NewDecoder(r.Body).Decode(&req)
		offsets = append(offsets, req.Offset)
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		end := req.Offset + 2 // two points per segment, grid of 4
		for i := req.Offset; i < end && i < 4; i++ {
			fmt.Fprintf(w, `{"kind":"predict","index":%d,"cache":"miss","status":200,"response":{"p":%d}}`+"\n", i, i)
		}
		complete := end >= 4
		fmt.Fprintf(w, `{"kind":"summary","points":4,"complete":%v}`+"\n", complete)
	}))
	t.Cleanup(ts.Close)

	opts := fastOpts()
	opts.MaxRetries = 0 // resume must not need the retry budget
	c := New(ts.URL, opts)
	res, err := c.Sweep(context.Background(), server.SweepRequest{Workloads: []server.WorkloadSpec{{Name: "fft"}}}, nil)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.Segments != 2 || res.Received != 4 || res.CacheMisses != 4 {
		t.Fatalf("res = %+v, want 2 segments / 4 received / 4 misses", res)
	}
	if len(offsets) != 2 || offsets[1] != 2 {
		t.Fatalf("offsets = %v, want [0 2]", offsets)
	}
}

// TestSweepShedRetriesWithRetryAfter: a shed grid (429) is retried like
// any shed request and succeeds on the next attempt.
func TestSweepShedRetriesWithRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			jsonError(w, http.StatusTooManyRequests, "overloaded", "2 grids already streaming")
			return
		}
		fmt.Fprint(w, `{"kind":"predict","index":0,"status":200,"response":{}}`+"\n")
		fmt.Fprint(w, `{"kind":"summary","points":1,"complete":true}`+"\n")
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, fastOpts())
	res, err := c.Sweep(context.Background(), server.SweepRequest{Workloads: []server.WorkloadSpec{{Name: "fft"}}}, nil)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.Attempts != 2 || res.Segments != 1 || res.Received != 1 {
		t.Fatalf("res = %+v, want 2 attempts / 1 segment / 1 received", res)
	}
}

// TestSweepNonRetryableStatusFails: a 400 rejection surfaces as an
// APIError without retrying.
func TestSweepNonRetryableStatusFails(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusBadRequest, "bad_request", "need at least one workload")
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, fastOpts())
	_, err := c.Sweep(context.Background(), server.SweepRequest{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

// TestSweepCallbackErrorAborts: an fn error stops the stream and is
// returned without retrying.
func TestSweepCallbackErrorAborts(t *testing.T) {
	ts := newSweepServer(t, server.Config{})
	c := New(ts.URL, fastOpts())
	sentinel := errors.New("stop here")
	var calls int
	_, err := c.Sweep(context.Background(), server.SweepRequest{
		Configs:   []server.ConfigSpec{{Name: "C4"}, {Name: "C8"}},
		Workloads: []server.WorkloadSpec{{Name: "fft"}},
	}, func(server.SweepLine) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want callback error back, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after aborting", calls)
	}
}

// TestSweepStalledStreamGivesUp: a server that never emits anything is
// abandoned after MaxRetries zero-progress attempts.
func TestSweepStalledStreamGivesUp(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK) // 200 with an empty body: no lines, no summary
	}))
	t.Cleanup(ts.Close)

	opts := fastOpts()
	opts.FailureThreshold = -1 // isolate the retry budget from the breaker
	c := New(ts.URL, opts)
	_, err := c.Sweep(context.Background(), server.SweepRequest{Workloads: []server.WorkloadSpec{{Name: "fft"}}}, nil)
	if err == nil || !strings.Contains(err.Error(), "without a summary") {
		t.Fatalf("want truncation error, got %v", err)
	}
	if want := int64(1 + 3); calls.Load() != want {
		t.Fatalf("calls = %d, want %d (1 try + MaxRetries)", calls.Load(), want)
	}
}

// TestParseRetryAfter covers both RFC 9110 forms and the clamps: a
// negative delay or a past date must not produce a negative pause, and
// an unparseable value is explicitly "no hint", never half-parsed.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"5", 5},
		{" 7 ", 7},
		{"0", 0},
		{"-5", 0},
		{"-0", 0},
		{"garbage", 0},
		{"", 0},
		{"12.5", 0}, // fractional seconds are not delay-seconds: no hint
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	// HTTP-date form: a future date rounds up to whole seconds...
	future := time.Now().Add(2500 * time.Millisecond).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got < 1 || got > 4 {
		t.Errorf("parseRetryAfter(future date) = %d, want ~3", got)
	}
	// ...and a past date clamps to zero.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Errorf("parseRetryAfter(past date) = %d, want 0", got)
	}
}

// TestDecodeAPIErrorRetryAfterHeader: the header feeds APIError through
// the clamped parser — a hostile "-5" cannot schedule an early retry.
func TestDecodeAPIErrorRetryAfterHeader(t *testing.T) {
	for hdr, want := range map[string]int{"3": 3, "-5": 0, "bogus": 0} {
		h := http.Header{}
		h.Set("Retry-After", hdr)
		if got := decodeAPIError(429, h, []byte(`{"error":"shed","code":"overloaded"}`)).RetryAfter; got != want {
			t.Errorf("Retry-After %q -> %d, want %d", hdr, got, want)
		}
	}
}
