package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"memhier/internal/server"
)

// fastOpts returns Options tuned for tests: real retry logic, negligible
// wall-clock time.
func fastOpts() Options {
	return Options{
		MaxRetries:    3,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		RetryAfterCap: 10 * time.Millisecond,
		OpenFor:       50 * time.Millisecond,
		Seed:          1,
	}
}

// jsonError writes a response in the service's error contract.
func jsonError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: msg, Code: code})
}

func TestPostSuccessFirstAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	var out map[string]string
	meta, err := c.Post(context.Background(), "/v1/predict", map[string]int{"x": 1}, &out)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if meta.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("attempts = %d, server calls = %d, want 1/1", meta.Attempts, calls.Load())
	}
	if meta.Cache != "miss" {
		t.Fatalf("meta.Cache = %q, want miss", meta.Cache)
	}
	if out["ok"] != "yes" {
		t.Fatalf("decoded body = %v", out)
	}
}

func TestRetriesTransientFailuresThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			jsonError(w, http.StatusServiceUnavailable, "transient", "injected")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	meta, err := c.Post(context.Background(), "/v1/predict", struct{}{}, nil)
	if err != nil {
		t.Fatalf("Post after transient failures: %v", err)
	}
	if meta.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", meta.Attempts)
	}
}

func TestRequestIDConstantAcrossRetries(t *testing.T) {
	ids := make(chan string, 8)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids <- r.Header.Get("X-Request-ID")
		if calls.Add(1) <= 2 {
			jsonError(w, http.StatusInternalServerError, "internal", "boom")
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	meta, err := c.Post(context.Background(), "/v1/predict", struct{}{}, nil)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	close(ids)
	var seen []string
	for id := range ids {
		seen = append(seen, id)
	}
	if len(seen) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(seen))
	}
	for _, id := range seen {
		if id == "" || id != seen[0] {
			t.Fatalf("request IDs varied across retries: %v", seen)
		}
	}
	if meta.RequestID != seen[0] {
		t.Fatalf("meta.RequestID = %q, wire carried %q", meta.RequestID, seen[0])
	}
}

func TestNonRetryableStatusFailsImmediately(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusBadRequest, "bad_request", "no such workload")
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	_, err := c.Post(context.Background(), "/v1/predict", struct{}{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_request" {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

func TestRetriesExhaustedReturnsLastError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "transient", "still down")
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.FailureThreshold = -1 // isolate retry behavior from the breaker
	c := New(ts.URL, opts)
	meta, err := c.Post(context.Background(), "/v1/predict", struct{}{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "transient" {
		t.Fatalf("want wrapped transient APIError, got %v", err)
	}
	if want := int64(4); calls.Load() != want { // 1 try + 3 retries
		t.Fatalf("calls = %d, want %d", calls.Load(), want)
	}
	if meta.Attempts != 4 {
		t.Fatalf("meta.Attempts = %d, want 4", meta.Attempts)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "overloaded", "queue full")
			return
		}
		gap = now.Sub(last)
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.RetryAfterCap = 150 * time.Millisecond // hint of 1s is capped here
	c := New(ts.URL, opts)
	start := time.Now()
	if _, err := c.Post(context.Background(), "/v1/validate", struct{}{}, nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if gap < opts.RetryAfterCap {
		t.Fatalf("retry came after %v, want >= capped Retry-After %v", gap, opts.RetryAfterCap)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("Retry-After cap not applied: call took %v", elapsed)
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		c := New("http://unused", Options{Seed: seed, BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond})
		var ds []time.Duration
		for attempt := 0; attempt < 6; attempt++ {
			ceiling := c.opts.BaseBackoff << uint(attempt)
			if ceiling > c.opts.MaxBackoff {
				ceiling = c.opts.MaxBackoff
			}
			c.mu.Lock()
			ds = append(ds, time.Duration(c.rng.Int63n(int64(ceiling)+1)))
			c.mu.Unlock()
		}
		return ds
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
		ceiling := time.Millisecond << uint(i)
		if ceiling > 64*time.Millisecond {
			ceiling = 64 * time.Millisecond
		}
		if a[i] < 0 || a[i] > ceiling {
			t.Fatalf("jitter %v outside [0, %v]", a[i], ceiling)
		}
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte("{}"))
			return
		}
		jsonError(w, http.StatusInternalServerError, "internal", "down")
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.MaxRetries = -1 // one attempt per call, so the streak is per-call
	opts.FailureThreshold = 3
	opts.OpenFor = 40 * time.Millisecond
	c := New(ts.URL, opts)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Post(ctx, "/v1/predict", struct{}{}, nil); err == nil {
			t.Fatal("expected failure while server is down")
		}
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	wire := calls.Load()
	_, err := c.Post(ctx, "/v1/predict", struct{}{}, nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen while open, got %v", err)
	}
	if calls.Load() != wire {
		t.Fatal("open breaker still touched the network")
	}

	healthy.Store(true)
	time.Sleep(opts.OpenFor + 10*time.Millisecond)
	if _, err := c.Post(ctx, "/v1/predict", struct{}{}, nil); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if c.BreakerOpen() {
		t.Fatal("breaker did not close after successful probe")
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jsonError(w, http.StatusServiceUnavailable, "transient", "still down")
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.MaxRetries = -1
	opts.FailureThreshold = 2
	opts.OpenFor = 30 * time.Millisecond
	c := New(ts.URL, opts)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c.Post(ctx, "/v1/predict", struct{}{}, nil)
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker should be open")
	}
	time.Sleep(opts.OpenFor + 10*time.Millisecond)
	if _, err := c.Post(ctx, "/v1/predict", struct{}{}, nil); err == nil {
		t.Fatal("probe against a down server should fail")
	}
	if !c.BreakerOpen() {
		t.Fatal("failed probe should reopen the breaker")
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "transient", "down")
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.BaseBackoff = time.Hour // any backoff would hang without ctx handling
	opts.MaxBackoff = time.Hour
	c := New(ts.URL, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Post(ctx, "/v1/predict", struct{}{}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt backoff")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancel)", calls.Load())
	}
}

func TestObserverSeesEveryAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			jsonError(w, http.StatusServiceUnavailable, "transient", "first")
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	var attempts []Attempt
	opts := fastOpts()
	opts.Observer = func(a Attempt) { attempts = append(attempts, a) }
	c := New(ts.URL, opts)
	if _, err := c.Post(context.Background(), "/v1/predict", struct{}{}, nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if len(attempts) != 2 {
		t.Fatalf("observer saw %d attempts, want 2", len(attempts))
	}
	if attempts[0].Status != http.StatusServiceUnavailable || attempts[1].Status != http.StatusOK {
		t.Fatalf("observed statuses: %d, %d", attempts[0].Status, attempts[1].Status)
	}
	if attempts[0].RequestID != attempts[1].RequestID {
		t.Fatal("observer saw different request IDs for one logical call")
	}
}

func TestDecodeAPIErrorToleratesNonJSON(t *testing.T) {
	h := http.Header{}
	h.Set("Content-Type", "text/plain")
	apiErr := decodeAPIError(http.StatusBadGateway, h, []byte("upstream exploded"))
	if apiErr.Status != http.StatusBadGateway {
		t.Fatalf("Status = %d", apiErr.Status)
	}
	if apiErr.ContentType != "text/plain" {
		t.Fatalf("ContentType = %q", apiErr.ContentType)
	}
	if apiErr.Message == "" {
		t.Fatal("message lost for non-JSON body")
	}
}
