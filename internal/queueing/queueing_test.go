package queueing

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMD1ResponseNoContention(t *testing.T) {
	for _, tau := range []float64{0, 1, 50, 2000, 45075} {
		got, err := MD1Response(tau, 0)
		if err != nil {
			t.Fatalf("MD1Response(%v, 0): %v", tau, err)
		}
		if got != tau {
			t.Errorf("MD1Response(%v, 0) = %v, want %v", tau, got, tau)
		}
	}
}

func TestMD1ResponseKnownValues(t *testing.T) {
	tests := []struct {
		tau, lambda float64
		want        float64
	}{
		// R = tau + lambda*tau^2/(2*(1-rho))
		{tau: 10, lambda: 0.05, want: 10 + 0.05*100/(2*0.5)},
		{tau: 50, lambda: 0.01, want: 50 + 0.01*2500/(2*0.5)},
		{tau: 1, lambda: 0.5, want: 1 + 0.5*1/(2*0.5)},
	}
	for _, tc := range tests {
		got, err := MD1Response(tc.tau, tc.lambda)
		if err != nil {
			t.Fatalf("MD1Response(%v, %v): %v", tc.tau, tc.lambda, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("MD1Response(%v, %v) = %v, want %v", tc.tau, tc.lambda, got, tc.want)
		}
	}
}

func TestMD1ResponseEquivalentForms(t *testing.T) {
	// The paper's closed form (tau - lambda tau^2/2)/(1-rho) must equal the
	// Pollaczek–Khinchine form tau + lambda tau^2/(2(1-rho)).
	f := func(tauRaw, lamRaw uint16) bool {
		tau := 1 + float64(tauRaw%5000)
		lambda := float64(lamRaw%1000) / 1000 / tau * 0.99 // rho in [0, .99)
		got, err := MD1Response(tau, lambda)
		if err != nil {
			return false
		}
		rho := lambda * tau
		want := tau + lambda*tau*tau/(2*(1-rho))
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMD1ResponseSaturation(t *testing.T) {
	if _, err := MD1Response(10, 0.1); !errors.Is(err, ErrSaturated) {
		t.Errorf("rho=1: got err=%v, want ErrSaturated", err)
	}
	if _, err := MD1Response(10, 0.2); !errors.Is(err, ErrSaturated) {
		t.Errorf("rho=2: got err=%v, want ErrSaturated", err)
	}
}

func TestMD1ResponseRejectsNegative(t *testing.T) {
	if _, err := MD1Response(-1, 0); err == nil {
		t.Error("negative tau accepted")
	}
	if _, err := MD1Response(1, -0.5); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestMD1MonotoneInLoad(t *testing.T) {
	f := func(l1Raw, l2Raw uint16) bool {
		const tau = 40.0
		l1 := float64(l1Raw%1000) / 1000 * 0.99 / tau
		l2 := float64(l2Raw%1000) / 1000 * 0.99 / tau
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		r1, err1 := MD1Response(tau, l1)
		r2, err2 := MD1Response(tau, l2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1 <= r2+1e-12 && r1 >= tau
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMG1ReducesToMD1(t *testing.T) {
	for _, tau := range []float64{1, 15, 50} {
		for _, lambda := range []float64{0, 0.001, 0.01} {
			md1, err := MD1Response(tau, lambda)
			if err != nil {
				t.Fatal(err)
			}
			mg1, err := MG1Response(tau, 0, lambda)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(md1-mg1) > 1e-9 {
				t.Errorf("tau=%v lambda=%v: MD1=%v MG1(cs2=0)=%v", tau, lambda, md1, mg1)
			}
		}
	}
}

func TestMG1VariabilityPenalty(t *testing.T) {
	// Higher service variability must not decrease the response time.
	det, err := MG1Response(50, 0, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := MG1Response(50, 1, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if exp <= det {
		t.Errorf("exponential server response %v should exceed deterministic %v", exp, det)
	}
}

func TestMG1Errors(t *testing.T) {
	if _, err := MG1Response(10, -1, 0.01); err == nil {
		t.Error("negative cs2 accepted")
	}
	if _, err := MG1Response(10, 0, 0.1); !errors.Is(err, ErrSaturated) {
		t.Errorf("rho=1 got %v", err)
	}
	if _, err := MG1Response(-10, 0, 0.01); err == nil {
		t.Error("negative tau accepted")
	}
	if _, err := MG1Response(10, 0, -0.01); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(50, 0.01); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization(50, .01) = %v, want 0.5", got)
	}
}

func TestHarmonicSmall(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0}, {-3, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3},
		{4, 1.0 + 0.5 + 1.0/3 + 0.25},
	}
	for _, tc := range tests {
		if got := Harmonic(tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestHarmonicAsymptoticAgreement(t *testing.T) {
	// The asymptotic branch should agree with direct summation at the
	// crossover scale.
	n := 1 << 17
	direct := 0.0
	for i := n; i >= 1; i-- {
		direct += 1 / float64(i)
	}
	if got := Harmonic(n); math.Abs(got-direct) > 1e-9 {
		t.Errorf("Harmonic(%d) = %v, direct sum %v", n, got, direct)
	}
}

func TestHarmonicMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		n1, n2 := int(a), int(b)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		return Harmonic(n1) <= Harmonic(n2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMVAResponseBasics(t *testing.T) {
	// One customer never queues.
	r, err := MVAResponse(50, 100, 1)
	if err != nil || r != 50 {
		t.Errorf("MVA(1) = %v, %v; want 50", r, err)
	}
	// Zero think time: all n customers permanently enqueued, R = n·tau.
	r, err = MVAResponse(50, 0, 4)
	if err != nil || math.Abs(r-200) > 1e-9 {
		t.Errorf("MVA(z=0, n=4) = %v, %v; want 200", r, err)
	}
	// Huge think time: effectively no contention.
	r, err = MVAResponse(50, 1e12, 8)
	if err != nil || math.Abs(r-50) > 1e-3 {
		t.Errorf("MVA(z→∞) = %v, %v; want ≈50", r, err)
	}
}

func TestMVAResponseBoundsAndMonotonicity(t *testing.T) {
	f := func(tauRaw, zRaw uint16, nRaw uint8) bool {
		tau := 1 + float64(tauRaw%5000)
		z := float64(zRaw)
		n := int(nRaw%16) + 1
		prev := 0.0
		for k := 1; k <= n; k++ {
			r, err := MVAResponse(tau, z, k)
			if err != nil {
				return false
			}
			// tau ≤ R(k) ≤ k·tau, nondecreasing in k.
			if r < tau-1e-9 || r > float64(k)*tau+1e-9 || r < prev-1e-9 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMVAResponseAgreesWithMD1AtLowLoad(t *testing.T) {
	// With long think times the closed and open models converge.
	tau := 50.0
	z := 100000.0
	n := 4
	lambda := float64(n-1) / (z + tau) // competing arrival rate seen by one customer
	mva, err := MVAResponse(tau, z, n)
	if err != nil {
		t.Fatal(err)
	}
	md1, err := MD1Response(tau, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mva-md1)/md1 > 0.01 {
		t.Errorf("low load: MVA %v vs MD1 %v diverge", mva, md1)
	}
}

func TestMVAResponseErrors(t *testing.T) {
	if _, err := MVAResponse(-1, 0, 1); err == nil {
		t.Error("negative tau accepted")
	}
	if _, err := MVAResponse(1, -1, 1); err == nil {
		t.Error("negative z accepted")
	}
	if _, err := MVAResponse(1, 0, 0); err == nil {
		t.Error("zero customers accepted")
	}
}

func TestBarrierWait(t *testing.T) {
	// p = 4, lambdaB = 0.5: (1/2 + 1/3 + 1/4)/0.5
	got, err := BarrierWait(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 1.0/3 + 0.25) / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("BarrierWait(4, 0.5) = %v, want %v", got, want)
	}
}

func TestBarrierWaitDegenerate(t *testing.T) {
	for _, p := range []int{-1, 0, 1} {
		got, err := BarrierWait(p, 0) // rate ignored when p <= 1
		if err != nil || got != 0 {
			t.Errorf("BarrierWait(%d) = %v, %v; want 0, nil", p, got, err)
		}
	}
	if _, err := BarrierWait(2, 0); err == nil {
		t.Error("zero rate with p>1 accepted")
	}
	if _, err := BarrierWait(2, -1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestBarrierSum(t *testing.T) {
	if got := BarrierSum(1); got != 0 {
		t.Errorf("BarrierSum(1) = %v, want 0", got)
	}
	if got, want := BarrierSum(2), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("BarrierSum(2) = %v, want %v", got, want)
	}
	if got, want := BarrierSum(4), 0.5+1.0/3+0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("BarrierSum(4) = %v, want %v", got, want)
	}
}

func TestExpectedMaxExponential(t *testing.T) {
	got, err := ExpectedMaxExponential(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 0.5 + 1.0/3) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedMaxExponential(3, 2) = %v, want %v", got, want)
	}
	if _, err := ExpectedMaxExponential(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ExpectedMaxExponential(1, 0); err == nil {
		t.Error("rate=0 accepted")
	}
}

func TestExpectedMaxExponentialGrowsWithN(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 64; n *= 2 {
		v, err := ExpectedMaxExponential(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Errorf("E[max] not increasing at n=%d: %v <= %v", n, v, prev)
		}
		prev = v
	}
}

func BenchmarkMD1Response(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MD1Response(50, 0.005); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMVAResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MVAResponse(50, 200, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSaturationGuard walks the M/D/1 and M/G/1 responses across the
// near-saturation boundary: ρ = 0.95 and ρ = 0.999 are admissible under
// the default guard, anything above the threshold trips ErrNearSaturated
// with the ρ context in the chain, and ρ >= 1 stays ErrSaturated.
func TestSaturationGuard(t *testing.T) {
	const tau = 50.0
	guard := Guard{MaxRho: DefaultMaxRho}
	cases := []struct {
		name    string
		rho     float64
		g       Guard
		wantErr error // nil means a finite response is required
	}{
		{"rho=0.95 default guard", 0.95, guard, nil},
		// 0.998999 rather than 0.999 exactly: λ = ρ/τ then λ·τ does not
		// round-trip in binary and can land a hair above the threshold.
		{"rho=0.998999 under threshold", 0.998999, guard, nil},
		{"rho=0.9995 near-saturated", 0.9995, guard, ErrNearSaturated},
		{"rho=1.0 saturated", 1.0, guard, ErrSaturated},
		{"rho=1.5 saturated", 1.5, guard, ErrSaturated},
		{"rho=0.9995 unguarded", 0.9995, Guard{}, nil},
		{"rho=1.0 unguarded", 1.0, Guard{}, ErrSaturated},
		{"rho=0.96 tight guard", 0.96, Guard{MaxRho: 0.95}, ErrNearSaturated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lambda := tc.rho / tau
			rMD1, errMD1 := MD1ResponseGuarded(tau, lambda, tc.g)
			rMG1, errMG1 := MG1ResponseGuarded(tau, 0, lambda, tc.g)
			for i, got := range []error{errMD1, errMG1} {
				if tc.wantErr == nil {
					if got != nil {
						t.Fatalf("formula %d: unexpected error %v", i, got)
					}
					continue
				}
				if !errors.Is(got, tc.wantErr) {
					t.Fatalf("formula %d: error %v, want chain containing %v", i, got, tc.wantErr)
				}
				if !strings.Contains(got.Error(), "rho=") {
					t.Errorf("formula %d: error %q missing rho context", i, got)
				}
			}
			if tc.wantErr == nil {
				if rMD1 < tau || math.IsInf(rMD1, 0) || math.IsNaN(rMD1) {
					t.Errorf("MD1 response %v implausible at rho=%v", rMD1, tc.rho)
				}
				// Zero service variance: M/G/1 with cs2=0 must agree.
				if math.Abs(rMD1-rMG1) > 1e-9*rMD1 {
					t.Errorf("MD1 %v and MG1(cs2=0) %v disagree", rMD1, rMG1)
				}
			}
		})
	}
}

// TestGuardedMatchesUnguardedBelowThreshold checks the guard changes
// nothing in the admissible region.
func TestGuardedMatchesUnguardedBelowThreshold(t *testing.T) {
	for _, rho := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.998} {
		lambda := rho / 50
		plain, err1 := MD1Response(50, lambda)
		guarded, err2 := MD1ResponseGuarded(50, lambda, Guard{MaxRho: DefaultMaxRho})
		if err1 != nil || err2 != nil {
			t.Fatalf("rho=%v: errors %v, %v", rho, err1, err2)
		}
		if plain != guarded {
			t.Errorf("rho=%v: guarded %v != unguarded %v", rho, guarded, plain)
		}
	}
}

// TestSaturationErrorCarriesRho checks the guard rejections are typed:
// errors.As must extract a SaturationError with the offending utilization
// and guard threshold, through both direct and wrapped chains, for the
// near-saturated and truly saturated regimes alike. This is what lets the
// prediction service report ρ in a structured JSON error body.
func TestSaturationErrorCarriesRho(t *testing.T) {
	const tau = 50.0
	cases := []struct {
		name     string
		rho      float64
		g        Guard
		sentinel error
		wantMax  float64
	}{
		{"near-saturated default guard", 0.9995, Guard{MaxRho: DefaultMaxRho}, ErrNearSaturated, DefaultMaxRho},
		{"near-saturated tight guard", 0.96, Guard{MaxRho: 0.95}, ErrNearSaturated, 0.95},
		{"saturated", 1.25, Guard{}, ErrSaturated, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lambda := tc.rho / tau
			_, err := MD1ResponseGuarded(tau, lambda, tc.g)
			if err == nil {
				t.Fatalf("rho=%v: expected a guard rejection", tc.rho)
			}
			// Wrap once more, the way core.Evaluate's fixed point does,
			// to prove the typed value survives %w chains.
			err = fmt.Errorf("core: saturated at solution: %w", err)
			var sat *SaturationError
			if !errors.As(err, &sat) {
				t.Fatalf("errors.As found no SaturationError in %v", err)
			}
			if math.Abs(sat.Rho-tc.rho) > 1e-12 {
				t.Errorf("Rho = %v, want %v", sat.Rho, tc.rho)
			}
			if sat.MaxRho != tc.wantMax {
				t.Errorf("MaxRho = %v, want %v", sat.MaxRho, tc.wantMax)
			}
			if sat.Tau != tau || math.Abs(sat.Lambda-lambda) > 1e-18 {
				t.Errorf("context (tau=%v, lambda=%v), want (%v, %v)", sat.Tau, sat.Lambda, tau, lambda)
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("chain lost sentinel %v", tc.sentinel)
			}
			if sat.Unwrap() != tc.sentinel {
				t.Errorf("Unwrap() = %v, want %v", sat.Unwrap(), tc.sentinel)
			}
		})
	}
}
