// Package queueing provides the queueing-theoretic building blocks of the
// Du–Zhang cluster model: M/D/1 and M/G/1 response times for contended
// memory-hierarchy levels, and the order-statistics barrier cost.
//
// All quantities are expressed in abstract time units (CPU cycles in this
// repository). An arrival rate is therefore in requests per cycle and a
// service time in cycles; their product is the offered load (utilization).
//
//chc:deterministic
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrSaturated is returned when the offered load at a queueing center is at
// or beyond 1, where the steady-state response time diverges.
var ErrSaturated = errors.New("queueing: server saturated (utilization >= 1)")

// ErrNearSaturated is returned by the guarded response functions when the
// offered load exceeds the guard's threshold but is still below 1: the
// formula remains finite there, yet its value is dominated by the 1/(1−ρ)
// pole and tiny rate errors produce wild response swings, so downstream
// consumers should treat such points as saturated rather than trust them.
var ErrNearSaturated = errors.New("queueing: server near saturation")

// DefaultMaxRho is the guard threshold the model uses: beyond ρ = 0.999
// the M/D/1 response exceeds 500 service times and the steady-state
// assumption has long stopped describing a bulk-synchronous phase.
const DefaultMaxRho = 0.999

// Guard bounds the admissible offered load of the open-queue formulas. The
// zero value only rejects true saturation (ρ >= 1), preserving the classic
// behavior; set MaxRho (e.g. DefaultMaxRho) to also reject near-saturated
// loads with an error chain carrying ErrNearSaturated and the ρ context.
type Guard struct {
	// MaxRho is the largest admissible utilization; 0 means 1 (reject
	// only exact saturation).
	MaxRho float64
}

// SaturationError is the typed rejection of the guarded response
// functions: it carries the offending utilization (and the guard in
// force) so callers can surface ρ structurally — e.g. in a JSON error
// body — instead of parsing the message. It wraps ErrSaturated or
// ErrNearSaturated, so existing errors.Is checks keep working.
type SaturationError struct {
	Rho    float64 // offered load λτ at the rejected operating point
	MaxRho float64 // guard threshold in force (1 for true saturation)
	Tau    float64 // service time
	Lambda float64 // arrival rate
	kind   error   // ErrSaturated or ErrNearSaturated
}

// Error renders the same message the untyped errors carried.
func (e *SaturationError) Error() string {
	if e.kind == ErrSaturated {
		return fmt.Sprintf("%v: rho=%.4f (tau=%v, lambda=%v)", e.kind, e.Rho, e.Tau, e.Lambda)
	}
	return fmt.Sprintf("%v: rho=%.6f exceeds guard %.6f (tau=%v, lambda=%v)",
		e.kind, e.Rho, e.MaxRho, e.Tau, e.Lambda)
}

// Unwrap exposes the sentinel (ErrSaturated or ErrNearSaturated).
func (e *SaturationError) Unwrap() error { return e.kind }

// NewSaturationError builds a SaturationError outside the guard machinery —
// e.g. a fault injector simulating a saturated backend. near selects the
// ErrNearSaturated sentinel (ρ beyond the guard but below 1) instead of
// ErrSaturated.
func NewSaturationError(rho, maxRho, tau, lambda float64, near bool) *SaturationError {
	kind := ErrSaturated
	if near {
		kind = ErrNearSaturated
	}
	return &SaturationError{Rho: rho, MaxRho: maxRho, Tau: tau, Lambda: lambda, kind: kind}
}

func (g Guard) maxRho() float64 {
	if g.MaxRho <= 0 {
		return 1
	}
	return g.MaxRho
}

// check validates the offered load rho against the guard.
func (g Guard) check(rho, tau, lambda float64) error {
	if rho >= 1 {
		return &SaturationError{Rho: rho, MaxRho: 1, Tau: tau, Lambda: lambda, kind: ErrSaturated}
	}
	if max := g.maxRho(); rho > max {
		return &SaturationError{Rho: rho, MaxRho: max, Tau: tau, Lambda: lambda, kind: ErrNearSaturated}
	}
	return nil
}

// MD1Response returns the mean response time (queueing delay plus service)
// of an M/D/1 queue with deterministic service time tau and Poisson arrival
// rate lambda from competing requesters.
//
// This is the form used throughout Du & Zhang's paper (their eq. for t2(o)):
//
//	R = (tau - lambda*tau^2/2) / (1 - lambda*tau)
//
// which equals tau + lambda*tau^2 / (2*(1-rho)), the Pollaczek–Khinchine
// mean response with zero service variance. With lambda == 0 it reduces to
// tau: an uncontended access costs exactly its service time.
func MD1Response(tau, lambda float64) (float64, error) {
	return MD1ResponseGuarded(tau, lambda, Guard{})
}

// MD1ResponseGuarded is MD1Response with a configurable saturation guard:
// offered loads beyond g.MaxRho (but below 1) return an error wrapping
// ErrNearSaturated instead of a numerically meaningless response.
func MD1ResponseGuarded(tau, lambda float64, g Guard) (float64, error) {
	if tau < 0 {
		return 0, fmt.Errorf("queueing: negative service time %v", tau)
	}
	if lambda < 0 {
		return 0, fmt.Errorf("queueing: negative arrival rate %v", lambda)
	}
	rho := lambda * tau
	if err := g.check(rho, tau, lambda); err != nil {
		return 0, err
	}
	return (tau - 0.5*lambda*tau*tau) / (1 - rho), nil
}

// MG1Response returns the mean response time of an M/G/1 queue with mean
// service time tau, squared coefficient of variation cs2 of the service
// distribution, and arrival rate lambda (Pollaczek–Khinchine):
//
//	R = tau + lambda*tau^2*(1+cs2) / (2*(1-rho))
//
// MD1Response is the special case cs2 == 0; an exponential server is
// cs2 == 1.
func MG1Response(tau, cs2, lambda float64) (float64, error) {
	return MG1ResponseGuarded(tau, cs2, lambda, Guard{})
}

// MG1ResponseGuarded is MG1Response with a configurable saturation guard;
// see MD1ResponseGuarded.
func MG1ResponseGuarded(tau, cs2, lambda float64, g Guard) (float64, error) {
	if tau < 0 {
		return 0, fmt.Errorf("queueing: negative service time %v", tau)
	}
	if cs2 < 0 {
		return 0, fmt.Errorf("queueing: negative service-time variability %v", cs2)
	}
	if lambda < 0 {
		return 0, fmt.Errorf("queueing: negative arrival rate %v", lambda)
	}
	rho := lambda * tau
	if err := g.check(rho, tau, lambda); err != nil {
		return 0, err
	}
	return tau + lambda*tau*tau*(1+cs2)/(2*(1-rho)), nil
}

// Utilization returns the offered load lambda*tau.
func Utilization(tau, lambda float64) float64 { return lambda * tau }

// MVAResponse returns the mean response time at a single queueing center
// visited by n statistically identical customers, each alternating between
// z cycles of think time and one service demand of tau cycles, computed by
// exact Mean Value Analysis:
//
//	R(1) = tau
//	R(k) = tau · (1 + Q(k−1)),   Q(k) = k·R(k) / (R(k) + z)
//
// Unlike the open M/D/1 model, the closed system never saturates: a blocked
// customer stops generating load, so R(n) ≤ n·tau always. This is the
// alternative contention model for the processors-sharing-a-bus setting
// (each processor has at most one outstanding blocking reference).
func MVAResponse(tau, z float64, n int) (float64, error) {
	if tau < 0 {
		return 0, fmt.Errorf("queueing: negative service time %v", tau)
	}
	if z < 0 {
		return 0, fmt.Errorf("queueing: negative think time %v", z)
	}
	if n < 1 {
		return 0, fmt.Errorf("queueing: need at least one customer, got %d", n)
	}
	r := tau
	q := 0.0
	for k := 1; k <= n; k++ {
		r = tau * (1 + q)
		q = float64(k) * r / (r + z)
	}
	return r, nil
}

// Harmonic returns the n-th harmonic number H(n) = 1 + 1/2 + ... + 1/n.
// Harmonic(0) is 0.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	// Direct summation is exact enough and cheap for the small n used in
	// cluster configurations; fall back to the asymptotic expansion for
	// very large n to keep the function O(1) in degenerate sweeps.
	if n <= 1<<16 {
		s := 0.0
		for i := n; i >= 1; i-- { // sum small terms first for accuracy
			s += 1 / float64(i)
		}
		return s
	}
	const gamma = 0.57721566490153286060651209008240243
	x := float64(n)
	return math.Log(x) + gamma + 1/(2*x) - 1/(12*x*x)
}

// BarrierWait returns the expected extra wait a process incurs at a barrier
// synchronizing p processes whose inter-(barrier-access) times are
// exponential with rate lambdaB. Using order statistics of exponentials,
// the barrier cycle time is E[max of p exponentials] = H(p)/lambdaB, and the
// expected wait beyond a process's own access time is
//
//	(H(p) - 1) / lambdaB = (1/2 + 1/3 + ... + 1/p) / lambdaB.
//
// For p <= 1 there is no one to wait for and the result is 0.
func BarrierWait(p int, lambdaB float64) (float64, error) {
	if p <= 1 {
		return 0, nil
	}
	if lambdaB <= 0 {
		return 0, fmt.Errorf("queueing: barrier access rate must be positive, got %v", lambdaB)
	}
	return (Harmonic(p) - 1) / lambdaB, nil
}

// BarrierSum returns the paper's folded barrier term 1/2 + 1/3 + ... + 1/p,
// i.e. H(p) − 1, the dimensionless part of the barrier wait. It is the
// quantity added inside eq. (11) of the paper.
func BarrierSum(p int) float64 {
	if p <= 1 {
		return 0
	}
	return Harmonic(p) - 1
}

// ExpectedMaxExponential returns E[max(X1..Xn)] for i.i.d. exponential
// variables with the given rate: H(n)/rate.
func ExpectedMaxExponential(n int, rate float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("queueing: need at least one variable, got %d", n)
	}
	if rate <= 0 {
		return 0, fmt.Errorf("queueing: rate must be positive, got %v", rate)
	}
	return Harmonic(n) / rate, nil
}
