// Package memhier reproduces Du & Zhang, "The Impact of Memory Hierarchies
// on Cluster Computing" (IPPS 1999): an analytical model that predicts the
// average execution time per instruction of an SPMD application on a single
// SMP, a cluster of workstations, or a cluster of SMPs from the
// application's locality characterization (stack-distance parameters α, β
// and memory-reference fraction γ) and the platform's memory hierarchy —
// plus everything needed to validate and apply it:
//
//   - instrumented SPLASH-2-style kernels (FFT, LU, Radix, EDGE) and a
//     synthetic TPC-C that generate per-processor reference traces;
//   - stack-distance analysis and nonlinear least-squares fitting of the
//     paper's P(x) = 1 − (x/β+1)^−(α−1) locality curve;
//   - five execution-driven memory-hierarchy simulators (snooping SMP,
//     directory clusters over Ethernet buses or an ATM switch, and the
//     hybrid cluster of SMPs);
//   - the cost model and enumeration optimizer of the paper's §6 case
//     studies, with an upgrade advisor; and
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// This package is a stable facade over the internal implementation
// packages; the cmd/ tools and examples/ programs show typical use.
package memhier

import (
	"io"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/experiments"
	"memhier/internal/locality"
	"memhier/internal/machine"
	"memhier/internal/sim/backend"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// Model types: the paper's analytical model (internal/core).
type (
	// Workload is the model's application description: locality parameters
	// plus the measured sharing and conflict corrections.
	Workload = core.Workload
	// ModelOptions selects model variants (ablations, calibration).
	ModelOptions = core.Options
	// ModelResult is a solved evaluation: T, E(Instr), per-level breakdown.
	ModelResult = core.Result
	// LocalityParams are the paper's (α, β, γ).
	LocalityParams = locality.Params
)

// Platform types (internal/machine).
type (
	// Config describes one platform configuration.
	Config = machine.Config
	// CacheLevel is one level of a per-processor cache hierarchy.
	CacheLevel = machine.CacheLevel
	// PlatformKind is SMP, ClusterWS, or ClusterSMP.
	PlatformKind = machine.PlatformKind
	// NetworkKind is the cluster interconnect family.
	NetworkKind = machine.NetworkKind
	// Latencies is the §5.1 latency table.
	Latencies = machine.Latencies
)

// Platform enumerators.
const (
	SMP        = machine.SMP
	ClusterWS  = machine.ClusterWS
	ClusterSMP = machine.ClusterSMP

	NetNone      = machine.NetNone
	NetBus10     = machine.NetBus10
	NetBus100    = machine.NetBus100
	NetSwitch155 = machine.NetSwitch155
)

// Workload and simulation types.
type (
	// Kernel is an instrumented parallel application.
	Kernel = workloads.Workload
	// Characterization is a fitted (α, β, γ, κ, …) workload summary.
	Characterization = workloads.Characterization
	// Trace is a per-processor reference stream collection.
	Trace = trace.Trace
	// SimResult summarizes one simulated execution.
	SimResult = backend.RunResult
)

// Cost types (internal/cost).
type (
	// Catalog prices system components.
	Catalog = cost.Catalog
	// Scored is a priced, modeled configuration.
	Scored = cost.Scored
	// UpgradePlan is the outcome of the upgrade optimization.
	UpgradePlan = cost.UpgradePlan
	// Principle is a §6 workload-class recommendation.
	Principle = cost.Principle
)

// Evaluate solves the analytical model for one configuration and workload
// (eq. 4/7/11 of the paper).
func Evaluate(cfg Config, wl Workload, opts ModelOptions) (ModelResult, error) {
	return core.Evaluate(cfg, wl, opts)
}

// PaperWorkloads returns the paper's Table 2 characterizations.
func PaperWorkloads() []Workload { return core.PaperWorkloads() }

// PaperTPCC returns the §5.2 TPC-C characterization.
func PaperTPCC() Workload { return core.PaperTPCC() }

// PaperWorkload looks up a Table 2 workload by name.
func PaperWorkload(name string) (Workload, bool) { return core.PaperWorkload(name) }

// Catalogs of the paper's evaluated configurations (Tables 3–5).
func SMPCatalog() []Config        { return machine.SMPCatalog() }
func WSCatalog() []Config         { return machine.WSCatalog() }
func SMPClusterCatalog() []Config { return machine.SMPClusterCatalog() }

// ModernCatalog returns the multi-level modern presets (modern-2s-server,
// cloud-vm-8), resolvable through ConfigByName like the paper's C1–C15.
func ModernCatalog() []Config { return machine.ModernCatalog() }

// ConfigByName returns a C1–C15 catalog configuration or a modern preset.
func ConfigByName(name string) (Config, error) { return machine.ByName(name) }

// Kernels returns the paper's application suite at small (fast) or paper
// problem scale.
func Kernels(paperScale bool) []Kernel {
	if paperScale {
		return workloads.Suite(workloads.ScalePaper)
	}
	return workloads.Suite(workloads.ScaleSmall)
}

// KernelByName returns one application ("fft", "lu", "radix", "edge",
// "tpcc").
func KernelByName(name string, paperScale bool) (Kernel, error) {
	s := workloads.ScaleSmall
	if paperScale {
		s = workloads.ScalePaper
	}
	return workloads.ByName(name, s)
}

// Kernel constructors with explicit problem sizes.
func NewFFT(points int) Kernel                { return workloads.NewFFT(points) }
func NewLU(n, block int) Kernel               { return workloads.NewLU(n, block) }
func NewRadix(keys, radix int) Kernel         { return workloads.NewRadix(keys, radix) }
func NewEdge(width, height, iters int) Kernel { return workloads.NewEdge(width, height, iters) }
func NewTPCC(warehouses, transactions int) Kernel {
	return workloads.NewTPCC(warehouses, transactions)
}

// GenerateTrace runs a kernel over nproc logical processors and returns its
// reference trace.
func GenerateTrace(k Kernel, nproc int) (*Trace, error) {
	return workloads.GenerateTrace(k, nproc)
}

// Characterize measures a kernel's locality parameters the way the paper
// does (single-processor stack-distance analysis and least-squares fit), at
// data-item granularity — the paper's "unique data items".
func Characterize(k Kernel) (Characterization, error) {
	return workloads.Characterize(k, workloads.CharacterizeOptions{})
}

// CharacterizeLines measures locality at 64-byte cache-line granularity —
// the unit the simulators operate in, and therefore the right model input
// for model-vs-simulation comparisons.
func CharacterizeLines(k Kernel) (Characterization, error) {
	return workloads.Characterize(k, workloads.CharacterizeOptions{LineSize: 64})
}

// ModelWorkload converts a characterization into a model workload.
func ModelWorkload(c Characterization) Workload { return experiments.ModelWorkload(c) }

// Simulate drives the configuration's execution-driven simulator with the
// trace (the paper's validation methodology).
func Simulate(tr *Trace, cfg Config) (SimResult, error) { return backend.Simulate(tr, cfg) }

// StreamSimulate drives the simulator directly from a kernel without
// materializing the trace (constant memory; paper-scale problems).
func StreamSimulate(k Kernel, cfg Config) (SimResult, error) {
	sys, err := backend.NewSystem(cfg)
	if err != nil {
		return SimResult{}, err
	}
	var opts []backend.StreamOption
	if h, ok := k.(workloads.EventHinter); ok {
		opts = append(opts, backend.WithEventHint(h.EventHint(cfg.TotalProcs())))
	}
	return backend.StreamRun(sys, cfg.TotalProcs(), func(sink trace.Sink) error {
		return k.Run(cfg.TotalProcs(), sink)
	}, opts...)
}

// DefaultCatalog returns the 1999-era component prices of the case studies.
func DefaultCatalog() Catalog { return cost.DefaultCatalog() }

// Optimize finds the configuration minimizing modeled E(Instr) under the
// budget (the paper's eq. 6), returning the winner and the feasible
// ranking.
func Optimize(budget float64, wl Workload, opts ModelOptions) (Scored, []Scored, error) {
	return cost.Optimize(budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
}

// Upgrade finds the best configuration reachable from an existing cluster
// with the given budget increase (the paper's second optimization problem).
func Upgrade(existing Config, budgetIncrease float64, wl Workload, opts ModelOptions) (UpgradePlan, error) {
	return cost.Upgrade(existing, budgetIncrease, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
}

// Recommend classifies a workload into the paper's §6 platform principles.
func Recommend(wl Workload) Principle { return cost.Recommend(wl) }

// Scalability sweeps a cluster template's machine count and reports modeled
// speedup and efficiency per point.
func Scalability(template Config, wl Workload, opts ModelOptions, maxN int) ([]core.ScalabilityPoint, error) {
	return core.Scalability(template, wl, opts, maxN)
}

// Sensitivities estimates the elasticity of E(Instr) to cache, memory, and
// network latency — the quantitative form of the paper's upgrade rule.
func Sensitivities(cfg Config, wl Workload, opts ModelOptions) ([]core.Sensitivity, error) {
	return core.Sensitivities(cfg, wl, opts)
}

// EvaluateMix models a platform running a weighted mix of applications.
func EvaluateMix(cfg Config, mix []core.MixComponent, opts ModelOptions) (float64, error) {
	return core.EvaluateMix(cfg, mix, opts)
}

// MeasureSharing analyzes a multiprocessor trace for cross-machine sharing
// (RemoteShare) and invalidation-induced coherence misses — the model's
// cluster communication inputs.
func MeasureSharing(tr *Trace, procsPerNode int) experiments.SharingStats {
	return experiments.MeasureSharing(tr, procsPerNode)
}

// WriteReproduction renders the full reproduction (all tables, figures and
// case studies) to w. It is the library form of `chc-repro -all`.
func WriteReproduction(w io.Writer) error { return experiments.WriteAll(w, experiments.Options{}) }
