package memhier_test

import (
	"fmt"
	"log"

	"memhier"
)

// Evaluate the analytical model for a Table 4 platform and a Table 2
// workload.
func ExampleEvaluate() {
	cfg, err := memhier.ConfigByName("C7") // 2 workstations, 10Mb Ethernet
	if err != nil {
		log.Fatal(err)
	}
	lu, _ := memhier.PaperWorkload("LU")
	res, err := memhier.Evaluate(cfg, lu, memhier.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %d memory levels beyond the cache\n",
		lu.Name, cfg.Name, len(res.Levels))
	fmt.Printf("E(Instr) is positive: %v\n", res.EInstr > 0)
	// Output:
	// LU on C7: 3 memory levels beyond the cache
	// E(Instr) is positive: true
}

// Answer the paper's first design question: the best platform for a budget.
func ExampleOptimize() {
	radix, _ := memhier.PaperWorkload("Radix")
	best, feasible, err := memhier.Optimize(20000, radix, memhier.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform kind: %v\n", best.Config.Kind)
	fmt.Printf("within budget: %v\n", best.Cost <= 20000)
	fmt.Printf("candidates considered: %v\n", len(feasible) > 100)
	// Output:
	// platform kind: SMP
	// within budget: true
	// candidates considered: true
}

// Classify a workload into the paper's §6 principles.
func ExampleRecommend() {
	for _, name := range []string{"LU", "Radix"} {
		wl, _ := memhier.PaperWorkload(name)
		fmt.Printf("%s: %v\n", name, memhier.Recommend(wl))
	}
	// Output:
	// LU: slow network of a large number of high-speed workstations
	// Radix: an SMP (processor count may be limited)
}

// Run the full measurement pipeline on an instrumented kernel.
func ExampleCharacterize() {
	k, err := memhier.KernelByName("edge", false)
	if err != nil {
		log.Fatal(err)
	}
	c, err := memhier.Characterize(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel: %s\n", c.Workload)
	fmt.Printf("valid fit: %v\n", c.Params.Validate() == nil)
	fmt.Printf("gamma in (0.3, 0.6): %v\n", c.Params.Gamma > 0.3 && c.Params.Gamma < 0.6)
	// Output:
	// kernel: EDGE
	// valid fit: true
	// gamma in (0.3, 0.6): true
}
