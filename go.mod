module memhier

go 1.22
