// Benchmarks regenerating each of the paper's evaluation artifacts (one
// benchmark per table and figure, as indexed in DESIGN.md §5), the §5.3
// model-vs-simulation cost comparison, and the ablation studies of the
// model's design choices. Figure benchmarks report the mean absolute
// model-vs-simulation deviation as a custom "diffpct" metric; ablations
// report how the deviation moves when a model ingredient is removed.
package memhier

import (
	"io"
	"testing"

	"memhier/internal/core"
	"memhier/internal/experiments"
	"memhier/internal/machine"
	"memhier/internal/sim/backend"
	"memhier/internal/workloads"
)

// --- Tables ---

func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1().Rows) != 3 {
			b.Fatal("bad Table 1")
		}
	}
}

func BenchmarkTable2Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Options{})
		rows, _, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad Table 2")
		}
	}
}

func BenchmarkTable3SMPCatalog(b *testing.B) {
	benchCatalog(b, machine.SMPCatalog)
}

func BenchmarkTable4WSCatalog(b *testing.B) {
	benchCatalog(b, machine.WSCatalog)
}

func BenchmarkTable5SMPClusterCatalog(b *testing.B) {
	benchCatalog(b, machine.SMPClusterCatalog)
}

func benchCatalog(b *testing.B, catalog func() []machine.Config) {
	b.Helper()
	fft, _ := core.PaperWorkload("FFT")
	for i := 0; i < b.N; i++ {
		for _, cfg := range catalog() {
			if _, err := core.Evaluate(cfg, fft, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figures (model vs simulation validation) ---

func benchFigure(b *testing.B, pick func(*experiments.Suite) (experiments.Validation, error)) {
	b.Helper()
	var mean float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Options{})
		v, err := pick(s)
		if err != nil {
			b.Fatal(err)
		}
		mean = v.MeanAbsDiff()
	}
	b.ReportMetric(mean, "diffpct")
}

func BenchmarkFigure2SMPValidation(b *testing.B) {
	benchFigure(b, func(s *experiments.Suite) (experiments.Validation, error) { return s.Figure2() })
}

func BenchmarkFigure3ClusterWSValidation(b *testing.B) {
	benchFigure(b, func(s *experiments.Suite) (experiments.Validation, error) { return s.Figure3() })
}

func BenchmarkFigure4ClusterSMPValidation(b *testing.B) {
	benchFigure(b, func(s *experiments.Suite) (experiments.Validation, error) { return s.Figure4() })
}

// --- Case studies ---

func BenchmarkCase1SmallBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Case1(core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCase2LargeBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Case2(core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCase3Upgrade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Case3(2000, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseFFTEthernetVsATM(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.CaseFFT4x(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkCaseModernNetworks runs the beyond-1999 extension experiment,
// reporting the TPC-C cluster/SMP ratio on the SAN fabric (< 1 means the
// paper's SMP recommendation has flipped).
func BenchmarkCaseModernNetworks(b *testing.B) {
	var flip float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.CaseModernNetworks(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "TPC-C" && r.Network == "2Gb SAN" {
				flip = r.VsSMP
			}
		}
	}
	b.ReportMetric(flip, "tpcc-san/smp")
}

func BenchmarkCasePrinciples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Principles().Rows) != 5 {
			b.Fatal("bad principles table")
		}
	}
}

// --- §5.3: cost of a prediction vs a simulation ---

func BenchmarkModelVsSimulationSpeed(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Options{})
		sc, err := s.ModelVsSimSpeed()
		if err != nil {
			b.Fatal(err)
		}
		ratio = sc.Ratio
	}
	b.ReportMetric(ratio, "sim/model")
}

// BenchmarkModelEvaluation times a single analytic evaluation — the paper's
// "0.5 to 1 second and about a hundred bytes" claim, which on modern
// hardware is microseconds.
func BenchmarkModelEvaluation(b *testing.B) {
	cfg, _ := machine.ByName("C14")
	fft, _ := core.PaperWorkload("FFT")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(cfg, fft, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation times one execution-driven simulation of the same
// configuration (the expensive alternative the model replaces).
func BenchmarkSimulation(b *testing.B) {
	cfg, _ := machine.ByName("C14")
	cfg, _ = cfg.Scaled(16)
	w, err := workloads.ByName("fft", workloads.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workloads.GenerateTrace(w, cfg.TotalProcs())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

func benchAblation(b *testing.B, mutate func(*experiments.Options)) {
	b.Helper()
	var mean float64
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{}
		mutate(&opts)
		s := experiments.NewSuite(opts)
		v, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		mean = v.MeanAbsDiff()
	}
	b.ReportMetric(mean, "diffpct")
}

func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, func(*experiments.Options) {})
}

func BenchmarkAblationContention(b *testing.B) {
	benchAblation(b, func(o *experiments.Options) { o.Model.NoContention = true })
}

func BenchmarkAblationBarrier(b *testing.B) {
	benchAblation(b, func(o *experiments.Options) { o.Model.NoBarrier = true })
}

func BenchmarkAblationCoherenceAdjust(b *testing.B) {
	benchAblation(b, func(o *experiments.Options) { o.Model.CoherenceAdjust = -1 })
}

func BenchmarkAblationRescale(b *testing.B) {
	benchAblation(b, func(o *experiments.Options) { o.Model.NoRescale = true })
}

// BenchmarkAblationMVA swaps the paper's open M/D/1 contention model for
// exact closed-network MVA and reports the validation deviation.
func BenchmarkAblationMVA(b *testing.B) {
	benchAblation(b, func(o *experiments.Options) { o.Model.UseMVA = true })
}

// BenchmarkAblationProtocol compares the paper's MSI protocol against the
// MESI extension on a 4-processor SMP running LU, reporting the wall-cycle
// ratio (MSI/MESI ≥ 1: silent upgrades save bus transactions).
func BenchmarkAblationProtocol(b *testing.B) {
	cfg := machine.Config{Name: "smp4", Kind: machine.SMP, N: 1, Procs: 4,
		CacheBytes: 16 << 10, MemoryBytes: 4 << 20, Net: machine.NetNone, ClockMHz: 200}
	w := workloads.NewLU(96, 8)
	tr, err := workloads.GenerateTrace(w, 4)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msiSys, err := backend.NewSystemOpts(cfg, backend.SystemOptions{Protocol: backend.ProtocolMSI})
		if err != nil {
			b.Fatal(err)
		}
		msi, err := backend.Run(tr, msiSys)
		if err != nil {
			b.Fatal(err)
		}
		mesiSys, err := backend.NewSystemOpts(cfg, backend.SystemOptions{Protocol: backend.ProtocolMESI})
		if err != nil {
			b.Fatal(err)
		}
		mesi, err := backend.Run(tr, mesiSys)
		if err != nil {
			b.Fatal(err)
		}
		ratio = msi.WallCycles / mesi.WallCycles
	}
	b.ReportMetric(ratio, "msi/mesi")
}

// BenchmarkAblationGranularity compares characterization at item vs line
// granularity, reporting the fitted β ratio.
func BenchmarkAblationGranularity(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		w, err := workloads.ByName("fft", workloads.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		item, err := workloads.Characterize(w, workloads.CharacterizeOptions{LineSize: 1})
		if err != nil {
			b.Fatal(err)
		}
		line, err := workloads.Characterize(w, workloads.CharacterizeOptions{LineSize: 64})
		if err != nil {
			b.Fatal(err)
		}
		ratio = item.Params.Beta / line.Params.Beta
	}
	b.ReportMetric(ratio, "betaItem/betaLine")
}

// BenchmarkFullReproduction regenerates everything, end to end.
func BenchmarkFullReproduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteAll(io.Discard, experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
