// Command chc-sweep drives the /v1/sweep streaming API: a whole
// parameter grid — configurations × workloads, plus an eq. 6 budget
// optimization per workload — in one request. The default invocation
// reproduces the paper's full Fig. 2–4 case-study grid (C1–C15 × the
// three validated kernels × the budget axis) as a single sweep.
//
// Usage:
//
//	chc-sweep -addr http://127.0.0.1:8080
//	chc-sweep -addr ... -configs C1-C15 -workloads fft,lu,radix -budgets 2000:20000:2000
//	chc-sweep -addr ... -budgets 5000,8000,20000 -brute -ndjson
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memhier/internal/client"
	"memhier/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-sweep:", err)
	os.Exit(1)
}

// parseConfigs expands "C1-C15,C7" style lists: comma-separated names,
// each either a catalog name or a Cx-Cy range.
func parseConfigs(s string) ([]server.ConfigSpec, error) {
	var specs []server.ConfigSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			l, errL := strconv.Atoi(strings.TrimPrefix(strings.ToUpper(lo), "C"))
			h, errH := strconv.Atoi(strings.TrimPrefix(strings.ToUpper(hi), "C"))
			if errL == nil && errH == nil {
				if l > h {
					return nil, fmt.Errorf("config range %q runs backwards", part)
				}
				for i := l; i <= h; i++ {
					specs = append(specs, server.ConfigSpec{Name: "C" + strconv.Itoa(i)})
				}
				continue
			}
		}
		specs = append(specs, server.ConfigSpec{Name: part})
	}
	return specs, nil
}

func parseWorkloads(s string) []server.WorkloadSpec {
	var specs []server.WorkloadSpec
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			specs = append(specs, server.WorkloadSpec{Name: part})
		}
	}
	return specs
}

// parseBudgets accepts either a comma list ("2000,5000") or a
// lo:hi:step sweep ("2000:20000:2000", inclusive endpoints).
func parseBudgets(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("budget sweep %q: want lo:hi:step", s)
		}
		var v [3]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("budget sweep %q: %w", s, err)
			}
			v[i] = f
		}
		lo, hi, step := v[0], v[1], v[2]
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("budget sweep %q: need lo <= hi and step > 0", s)
		}
		var out []float64
		for b := lo; b <= hi; b += step {
			out = append(out, b)
		}
		return out, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			f, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return nil, fmt.Errorf("budget %q: %w", part, err)
			}
			out = append(out, f)
		}
	}
	return out, nil
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "chc-serve base URL")
		configs   = flag.String("configs", "C1-C15", "configurations: comma list of names (incl. modern-2s-server, cloud-vm-8) and Cx-Cy ranges (empty: budget axis only)")
		workloads = flag.String("workloads", "fft,lu,radix", "comma-separated workloads")
		budgets   = flag.String("budgets", "2000,3000,5000,8000,12000,16000,20000,30000,40000,60000",
			"budget axis: comma list or lo:hi:step (empty: no budget points)")
		delta   = flag.Float64("delta", 0, "coherence rate adjustment applied to every point")
		brute   = flag.Bool("brute", false, "force brute-force budget enumeration (verification aid)")
		ndjson  = flag.Bool("ndjson", false, "emit the raw NDJSON lines instead of the table")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall deadline for the sweep")
	)
	flag.Parse()

	cfgSpecs, err := parseConfigs(*configs)
	if err != nil {
		fail(err)
	}
	budgetAxis, err := parseBudgets(*budgets)
	if err != nil {
		fail(err)
	}
	req := server.SweepRequest{
		Configs:   cfgSpecs,
		Workloads: parseWorkloads(*workloads),
		Budgets:   budgetAxis,
		Delta:     *delta,
		Brute:     *brute,
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*addr, client.Options{})

	enc := json.NewEncoder(os.Stdout)
	emit := func(line server.SweepLine) error {
		if *ndjson {
			return enc.Encode(line)
		}
		if line.Error != nil {
			fmt.Printf("%4d  %-6s %-28s ERROR %d %s: %s\n",
				line.Index, line.Kind, line.Config+"/"+line.Workload, line.Status, line.Error.Code, line.Error.Error)
			return nil
		}
		switch line.Kind {
		case "predict":
			var resp server.PredictResponse
			if err := json.Unmarshal(line.Response, &resp); err != nil {
				return fmt.Errorf("point %d: %w", line.Index, err)
			}
			fmt.Printf("%4d  %-6s %-4s %-8s E(Instr)=%8.3f cycles  %.4g s  [%s]\n",
				line.Index, line.Kind, line.Config, line.Workload,
				resp.Result.EInstr, resp.Result.Seconds, line.Cache)
		case "budget":
			var resp server.BudgetSweepResponse
			if err := json.Unmarshal(line.Response, &resp); err != nil {
				return fmt.Errorf("point %d: %w", line.Index, err)
			}
			mode := "pruned"
			if resp.Brute {
				mode = "brute"
			}
			fmt.Printf("%4d  budget %-8s (%s: %d evals of %d configs)\n",
				line.Index, resp.Workload, mode, resp.Stats.Evaluated, resp.Stats.Configs)
			for _, p := range resp.Points {
				fmt.Printf("      $%-7.0f -> %-45s $%-6.0f E=%.3f\n",
					p.Budget, p.Best.Config.Name, p.Best.Cost, p.Best.EInstr)
			}
		}
		return nil
	}

	res, err := c.Sweep(ctx, req, emit)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr,
		"chc-sweep: %d points in %d segment(s): %d hits, %d misses, %d dedup, %d errors\n",
		res.Received, res.Segments, res.CacheHits, res.CacheMisses, res.DedupWaits, res.Errors)
	if res.Errors > 0 {
		os.Exit(2)
	}
}
