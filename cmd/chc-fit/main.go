// Command chc-fit characterizes an instrumented workload the way the
// paper's trace-analysis tool does: it collects the single-processor
// reference stream, computes the stack-distance distribution, and fits the
// locality model P(x) = 1 − (x/β+1)^−(α−1), reporting α, β, γ and the
// auxiliary measurements (HitMass, conflict factor κ, footprint).
//
// Usage:
//
//	chc-fit -workload fft
//	chc-fit -workload radix -line 64       # cache-line granularity
//	chc-fit -workload lu -paper-scale
//	chc-fit -workload edge -save trace.bin # also dump the raw trace
package main

import (
	"flag"
	"fmt"
	"os"

	"memhier/internal/workloads"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-fit:", err)
	os.Exit(1)
}

func main() {
	var (
		workload   = flag.String("workload", "fft", "workload: fft, lu, radix, edge, tpcc")
		line       = flag.Int("line", 1, "stack-distance granule: 1 = data item, 64 = cache line")
		paperScale = flag.Bool("paper-scale", false, "use the paper's full problem sizes")
		save       = flag.String("save", "", "also write the raw 1-processor trace to this file")
	)
	flag.Parse()

	scale := workloads.ScaleSmall
	if *paperScale {
		scale = workloads.ScalePaper
	}
	k, err := workloads.ByName(*workload, scale)
	if err != nil {
		fail(err)
	}

	c, err := workloads.Characterize(k, workloads.CharacterizeOptions{LineSize: *line})
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload:   %s — %s\n", c.Workload, c.Problem)
	fmt.Printf("granule:    %d byte(s)\n", c.LineSize)
	fmt.Printf("alpha       = %.4f\n", c.Params.Alpha)
	fmt.Printf("beta        = %.2f granules\n", c.Params.Beta)
	fmt.Printf("gamma       = %.4f\n", c.Params.Gamma)
	fmt.Printf("hit mass    = %.4f (stack distance < 2)\n", c.HitMass)
	fmt.Printf("kappa       = %.2f (2-way conflict inflation)\n", c.Conflict)
	fmt.Printf("footprint   = %d granules\n", c.Distinct)
	fmt.Printf("references  = %d\n", c.Refs)
	fmt.Printf("fit quality: RMSE %.4f, R^2 %.4f over %d points\n", c.Fit.RMSE, c.Fit.R2, c.Fit.Points)

	if *save != "" {
		tr, err := workloads.GenerateTrace(k, 1)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if _, err := tr.WriteTo(f); err != nil {
			fail(err)
		}
		fmt.Printf("trace saved to %s\n", *save)
	}
}
