// Command chc-model evaluates the analytical model for one platform
// configuration and one workload, printing T, E(Instr) and the per-level
// breakdown.
//
// Usage:
//
//	chc-model -config C8 -workload FFT            # paper Table 2 parameters
//	chc-model -config C8 -workload fft -measured  # characterize the Go kernel
//	chc-model -kind ws -N 4 -n 1 -cache 256KB -mem 64MB -net 100 -workload Radix
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memhier/internal/core"
	"memhier/internal/experiments"
	"memhier/internal/machine"
	"memhier/internal/workloads"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-model:", err)
	os.Exit(1)
}

// parseLevels accepts a comma-separated cache hierarchy, innermost level
// first, each level "size" or "size@cycles" ("32KB@4,1MB@14,4MB@44").
func parseLevels(s string) ([]machine.CacheLevel, error) {
	var out []machine.CacheLevel
	for _, part := range strings.Split(s, ",") {
		spec, latStr, hasLat := strings.Cut(strings.TrimSpace(part), "@")
		bytes, err := parseSize(spec)
		if err != nil {
			return nil, err
		}
		lv := machine.CacheLevel{Bytes: bytes}
		if hasLat {
			lv.LatencyCycles, err = strconv.ParseFloat(strings.TrimSpace(latStr), 64)
			if err != nil {
				return nil, fmt.Errorf("bad level latency %q", part)
			}
		}
		out = append(out, lv)
	}
	return out, nil
}

// parseSize accepts "256KB", "64MB", or plain bytes.
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func main() {
	var (
		config       = flag.String("config", "", "catalog configuration C1-C15 or a modern preset (modern-2s-server, cloud-vm-8)")
		kind         = flag.String("kind", "", "custom platform: smp, ws, or csmp")
		nMach        = flag.Int("N", 1, "machines in the cluster")
		nProc        = flag.Int("n", 1, "processors per machine")
		cacheStr     = flag.String("cache", "256KB", "per-processor cache size")
		levelsStr    = flag.String("levels", "", "cache hierarchy, innermost first, size[@cycles] per level (e.g. 32KB@4,1MB@14,4MB@44; overrides -cache)")
		memStr       = flag.String("mem", "64MB", "per-machine memory size")
		netStr       = flag.String("net", "none", "cluster network: 10, 100, atm")
		workload     = flag.String("workload", "FFT", "workload: FFT, LU, Radix, EDGE, TPC-C (paper) or fft, lu, radix, edge, tpcc (measured)")
		workloadFile = flag.String("workload-file", "", "JSON workload description (overrides -workload)")
		measured     = flag.Bool("measured", false, "characterize the instrumented Go kernel instead of using paper parameters")
		delta        = flag.Float64("delta", 0, "coherence rate adjustment (default: paper's 0.124)")
	)
	flag.Parse()

	var cfg machine.Config
	var err error
	if *config != "" {
		cfg, err = machine.ByName(*config)
		if err != nil {
			fail(err)
		}
	} else {
		cache, err := parseSize(*cacheStr)
		if err != nil {
			fail(err)
		}
		mem, err := parseSize(*memStr)
		if err != nil {
			fail(err)
		}
		net, err := machine.ParseNetwork(*netStr)
		if err != nil {
			fail(err)
		}
		k, err := machine.ParsePlatformKind(*kind)
		if err != nil {
			fail(fmt.Errorf("need -config or -kind (smp, ws, csmp)"))
		}
		cfg = machine.Config{Name: "custom", Kind: k, N: *nMach, Procs: *nProc,
			CacheBytes: cache, MemoryBytes: mem, Net: net, ClockMHz: 200}
		if *levelsStr != "" {
			levels, err := parseLevels(*levelsStr)
			if err != nil {
				fail(err)
			}
			cfg.Levels = levels
			cfg.CacheBytes = levels[0].Bytes
			cfg = cfg.Canonical()
		}
	}

	var wl core.Workload
	if *workloadFile != "" {
		f, err := os.Open(*workloadFile)
		if err != nil {
			fail(err)
		}
		wl, err = core.ReadWorkload(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("reading %s: %w", *workloadFile, err))
		}
	} else if *measured {
		var c workloads.Characterization
		wl, c, err = experiments.MeasuredWorkload(*workload)
		if err != nil {
			fail(err)
		}
		fmt.Printf("measured characterization: alpha=%.3f beta=%.2f gamma=%.3f kappa=%.2f footprint=%d lines\n",
			c.Params.Alpha, c.Params.Beta, c.Params.Gamma, c.Conflict, c.Distinct)
	} else {
		wl, err = core.PaperWorkloadByName(*workload)
		if err != nil {
			fail(err)
		}
	}

	opts := core.Options{CoherenceAdjust: *delta}
	res, err := core.Evaluate(cfg, wl, opts)
	if err != nil {
		fail(err)
	}

	core.RenderResult(os.Stdout, wl, res)
}
