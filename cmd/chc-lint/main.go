// Command chc-lint runs the repository's custom static-analysis suite —
// the checks behind the determinism and correctness contracts that go vet
// cannot see:
//
//	detorder   no map-order, wall-clock, environment, or global-rand
//	           dependence in //chc:deterministic packages
//	floateq    no exact floating-point equality in model arithmetic
//	errwrap    fmt.Errorf must wrap error arguments with %w, not %v/%s
//	guardedby  flow-sensitive: fields annotated "guarded by mu" are only
//	           touched with the lock must-held; returns never leak a lock
//	lockorder  whole-program lock-acquisition graph is acyclic (no
//	           potential deadlocks)
//	atomics    variables accessed via sync/atomic are never accessed
//	           plainly
//	leakcheck  launched goroutines always have a reachable exit or a
//	           channel operation to block on
//	hotalloc   //chc:hotpath functions avoid fmt, map iteration,
//	           unpreallocated append, and interface boxing
//
// Usage:
//
//	chc-lint [-list] [-json] [packages]
//
// Packages default to ./... resolved from the current directory. With
// -json, diagnostics are NDJSON records {file, line, col, analyzer,
// message} — one object per line, for tooling. The exit status is 1 when
// any diagnostic is reported, 2 on operational errors — the same
// convention as go vet, so CI can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"memhier/internal/lint"
	"memhier/internal/lint/atomics"
	"memhier/internal/lint/detorder"
	"memhier/internal/lint/errwrap"
	"memhier/internal/lint/floateq"
	"memhier/internal/lint/guardedby"
	"memhier/internal/lint/hotalloc"
	"memhier/internal/lint/leakcheck"
	"memhier/internal/lint/lockorder"
)

// analyzers is the full suite, in stable output order.
var analyzers = []*lint.Analyzer{
	atomics.Analyzer,
	detorder.Analyzer,
	errwrap.Analyzer,
	floateq.Analyzer,
	guardedby.Analyzer,
	hotalloc.Analyzer,
	leakcheck.Analyzer,
	lockorder.Analyzer,
}

// jsonDiag is the NDJSON shape of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and their contracts, then exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as NDJSON records")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s:\n%s\n\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "chc-lint: %s: type error: %v\n", pkg.Path, terr)
		}
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			rec := jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message}
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chc-lint:", err)
	os.Exit(2)
}
