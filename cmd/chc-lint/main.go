// Command chc-lint runs the repository's custom static-analysis suite —
// the checks behind the determinism and correctness contracts that go vet
// cannot see:
//
//	detorder   no map-order, wall-clock, environment, or global-rand
//	           dependence in //chc:deterministic packages
//	floateq    no exact floating-point equality in model arithmetic
//	errwrap    fmt.Errorf must wrap error arguments with %w, not %v/%s
//	guardedby  fields annotated "guarded by mu" are only touched with the
//	           lock held
//
// Usage:
//
//	chc-lint [-list] [packages]
//
// Packages default to ./... resolved from the current directory. The exit
// status is 1 when any diagnostic is reported, 2 on operational errors —
// the same convention as go vet, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"memhier/internal/lint"
	"memhier/internal/lint/detorder"
	"memhier/internal/lint/errwrap"
	"memhier/internal/lint/floateq"
	"memhier/internal/lint/guardedby"
)

// analyzers is the full suite, in stable output order.
var analyzers = []*lint.Analyzer{
	detorder.Analyzer,
	errwrap.Analyzer,
	floateq.Analyzer,
	guardedby.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and their contracts, then exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s:\n%s\n\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "chc-lint: %s: type error: %v\n", pkg.Path, terr)
		}
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chc-lint:", err)
	os.Exit(2)
}
