// Command chc-trace is the trace-collection tool the paper's §7 lists as
// future work: it generates per-processor memory reference traces from the
// instrumented kernels, saves/loads them in the compact binary format of
// internal/trace, and inspects their contents (per-CPU statistics, sharing
// analysis, stack-distance summaries).
//
// Usage:
//
//	chc-trace -workload fft -nproc 4 -out fft4.trace
//	chc-trace -in fft4.trace -stats
//	chc-trace -in fft4.trace -sharing -per-node 2
//	chc-trace -workload radix -nproc 1 -distances
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memhier/internal/experiments"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-trace:", err)
	os.Exit(1)
}

func main() {
	var (
		workload   = flag.String("workload", "", "generate: workload name (fft, lu, radix, edge, tpcc)")
		nproc      = flag.Int("nproc", 1, "generate: logical processors")
		paperScale = flag.Bool("paper-scale", false, "generate: paper problem sizes")
		out        = flag.String("out", "", "write the trace to this file")
		gz         = flag.Bool("gzip", false, "gzip-compress the written trace (read side auto-detects)")
		in         = flag.String("in", "", "read a trace from this file instead of generating")
		stats      = flag.Bool("stats", true, "print per-CPU statistics")
		sharing    = flag.Bool("sharing", false, "print cross-machine sharing analysis")
		perNode    = flag.Int("per-node", 1, "sharing: processors per machine")
		distances  = flag.Bool("distances", false, "print a stack-distance summary (all CPU streams, analyzed concurrently and merged)")
	)
	flag.Parse()

	var tr *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr = new(trace.Trace)
		if _, err := tr.ReadFrom(f); err != nil {
			fail(fmt.Errorf("reading %s: %w", *in, err))
		}
	case *workload != "":
		scale := workloads.ScaleSmall
		if *paperScale {
			scale = workloads.ScalePaper
		}
		k, err := workloads.ByName(strings.ToLower(*workload), scale)
		if err != nil {
			fail(err)
		}
		tr, err = workloads.GenerateTrace(k, *nproc)
		if err != nil {
			fail(err)
		}
		fmt.Printf("generated %s: %s\n", k.Name(), k.Description())
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		var n int64
		if *gz {
			n, err = tr.WriteGzip(f)
		} else {
			n, err = tr.WriteTo(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	}

	if *stats {
		fmt.Printf("processors: %d, instructions: %d, references: %d, gamma: %.4f\n",
			tr.NumCPU(), tr.Instructions(), tr.MemoryRefs(), tr.Gamma())
		for _, s := range tr.Streams {
			fmt.Printf("  cpu %2d: %9d refs (%d R / %d W), %10d compute, %d barriers, gamma %.4f\n",
				s.CPU, s.MemoryRefs(), s.Reads(), s.Writes(), s.ComputeInstrs(), s.Barriers(), s.Gamma())
		}
	}

	if *sharing {
		st := experiments.MeasureSharing(tr, *perNode)
		fmt.Printf("sharing (%d processors per machine):\n", *perNode)
		fmt.Printf("  remote-home share:   %.4f of references\n", st.RemoteShare)
		fmt.Printf("  coherence miss rate: %.4f of references\n", st.CoherenceMissRate)
	}

	if *distances {
		d, err := workloads.AnalyzeStreams(tr, 1)
		if err != nil {
			fail(err)
		}
		fmt.Printf("stack distances (%d CPUs merged, item granularity): %d refs, %d cold misses\n",
			tr.NumCPU(), d.Total+d.Cold, d.Cold)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if x, err := d.Quantile(q); err == nil {
				fmt.Printf("  P%.0f distance: %d\n", q*100, x)
			}
		}
		for _, c := range []int{64, 1024, 16384} {
			fmt.Printf("  LRU hit ratio at %5d items: %.4f\n", c, d.HitRatio(c))
		}
	}
}
