// Command chc-repro regenerates the paper's evaluation artifacts: Tables
// 1–5, the model-vs-simulation validation of Figures 2–4, and the §6 case
// studies.
//
// Usage:
//
//	chc-repro -all [-parallel 8] [-progress]
//	chc-repro -table 2
//	chc-repro -figure 3 [-divisor 16]
//	chc-repro -case 1 | -case fft4x | -case principles
//	chc-repro -calibrate
//
// -all renders every artifact over a worker pool (-parallel, default the
// CPU count); output is byte-identical for any worker count. -progress
// prints a per-artifact timing line to stderr as each one finishes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"memhier/internal/core"
	"memhier/internal/experiments"
	"memhier/internal/machine"
	"memhier/internal/profiling"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate everything")
		table     = flag.Int("table", 0, "render one table (1-5)")
		figure    = flag.Int("figure", 0, "render one validation figure (2-4)")
		caseID    = flag.String("case", "", "render one case study (1, 2, 3, fft4x, principles)")
		divisor   = flag.Int("divisor", 0, "capacity divisor for validation runs (default 16)")
		csv       = flag.Bool("csv", false, "emit figures as CSV series instead of tables")
		chart     = flag.Bool("chart", false, "emit figures as bar charts instead of tables")
		delta     = flag.Float64("delta", 0, "coherence rate adjustment (default: paper's 0.124)")
		calibrate = flag.Bool("calibrate", false, "search the coherence adjustment minimizing model-vs-sim error")
		report    = flag.String("report", "", "write the full reproduction as a Markdown report to this file")
		stamp     = flag.Bool("stamp", false, "embed the current UTC time in the report header (makes -report output differ run-to-run)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "artifact-level worker count for -all (output is identical for any value)")
		simWork   = flag.Int("sim-workers", 0, "run validation simulations on the phase-parallel engine with this many workers (0 = sequential; output is identical either way)")
		progress  = flag.Bool("progress", false, "print per-artifact timing lines to stderr as artifacts finish")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit (inspect with `go tool pprof`)")
	)
	flag.Parse()

	opts := experiments.Options{Divisor: *divisor, SimWorkers: *simWork}
	opts.Model.CoherenceAdjust = *delta
	if *stamp {
		// The wall clock stays in the CLI layer: experiments is a
		// //chc:deterministic package and embeds only what it is handed.
		opts.GeneratedAt = time.Now().UTC().Format("2006-01-02 15:04 UTC")
	}
	out := os.Stdout

	run := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "chc-repro:", err)
			os.Exit(1)
		}
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	run(err)
	defer func() {
		run(stopProf())
	}()
	if *parallel < 1 {
		run(fmt.Errorf("-parallel must be >= 1, got %d", *parallel))
	}
	var reporter experiments.Progress
	if *progress {
		start := time.Now()
		reporter = func(name string, d time.Duration, err error) {
			status := "done"
			if err != nil {
				status = "FAILED: " + err.Error()
			}
			fmt.Fprintf(os.Stderr, "chc-repro: [%7.3fs] %-16s %8.3fs  %s\n",
				time.Since(start).Seconds(), name, d.Seconds(), status)
		}
	}

	switch {
	case *report != "":
		f, err := os.Create(*report)
		run(err)
		err = experiments.WriteReport(f, opts)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		run(err)
		fmt.Fprintf(out, "report written to %s\n", *report)
	case *all:
		run(experiments.WriteAllParallel(out, opts, *parallel, reporter))
	case *calibrate:
		s := experiments.NewSuite(opts)
		clusters := append(machine.WSCatalog(), machine.SMPClusterCatalog()...)
		best, diff, err := s.CalibrateCoherenceAdjust(clusters, nil)
		run(err)
		fmt.Fprintf(out, "calibrated coherence adjustment δ = %.2f (mean |model−sim| = %.1f%%)\n", best, diff)
		fmt.Fprintf(out, "(the paper's empirically determined value was 12.4%%)\n")
	case *table != 0:
		// The tables are served from the same named-artifact registry that
		// -all renders, so the dispatch lives in one place.
		s := experiments.NewSuite(opts)
		if *table < 1 || *table > 5 {
			run(fmt.Errorf("no table %d (have 1-5)", *table))
		}
		names := []string{fmt.Sprintf("table%d", *table)}
		if *table == 2 {
			names = append(names, "table2-paper")
		}
		for _, name := range names {
			a, err := s.Artifact(name)
			run(err)
			run(a.Render(out))
		}
	case *figure != 0:
		s := experiments.NewSuite(opts)
		var v experiments.Validation
		var err error
		switch *figure {
		case 2:
			v, err = s.Figure2()
		case 3:
			v, err = s.Figure3()
		case 4:
			v, err = s.Figure4()
		default:
			err = fmt.Errorf("no figure %d (have 2-4)", *figure)
		}
		run(err)
		switch {
		case *csv:
			run(v.CSV().CSV(out))
		case *chart:
			for _, c := range v.Charts() {
				c.Render(out)
				fmt.Fprintln(out)
			}
		default:
			v.Table().Render(out)
		}
	case *caseID != "":
		var err error
		switch *caseID {
		case "1":
			_, tab, e := experiments.Case1(opts.Model)
			err = e
			if e == nil {
				tab.Render(out)
			}
		case "2":
			_, tab, e := experiments.Case2(opts.Model)
			err = e
			if e == nil {
				tab.Render(out)
			}
		case "3":
			_, tab, e := experiments.Case3(2000, opts.Model)
			err = e
			if e == nil {
				tab.Render(out)
			}
		case "fft4x":
			_, tab, e := experiments.CaseFFT4x(opts.Model)
			err = e
			if e == nil {
				tab.Render(out)
			}
		case "principles":
			experiments.Principles().Render(out)
		case "modern":
			_, tab, e := experiments.CaseModernNetworks(opts.Model)
			err = e
			if e == nil {
				tab.Render(out)
			}
		case "speedgap":
			for _, name := range []string{"FFT", "Radix"} {
				wl, _ := core.PaperWorkload(name)
				_, tab, e := experiments.CaseSpeedGap(wl, opts.Model)
				if e != nil {
					err = e
					break
				}
				tab.Render(out)
				fmt.Fprintln(out)
			}
		case "sizescaling":
			_, tab, e := experiments.CaseSizeScaling(opts.Model)
			err = e
			if e == nil {
				tab.Render(out)
			}
		case "map":
			for _, alpha := range []float64{1.15, 1.5, 1.8} {
				cells, tab, e := experiments.PrincipleMap(alpha, nil, nil, 20000, opts.Model)
				if e != nil {
					err = e
					break
				}
				tab.Render(out)
				fmt.Fprintf(out, "  classifier/optimizer agreement: %.0f%%\n\n",
					experiments.AgreementRate(cells)*100)
			}
		default:
			err = fmt.Errorf("no case %q (have 1, 2, 3, fft4x, principles, modern, map, speedgap, sizescaling)", *caseID)
		}
		run(err)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
