// Command chc-opt answers the paper's two design questions: the best
// cluster platform for a budget and workload (eq. 6), and the best upgrade
// of an existing cluster for a budget increase (§6).
//
// Usage:
//
//	chc-opt -budget 5000 -workload FFT
//	chc-opt -budget 20000 -workload Radix -top 10
//	chc-opt -upgrade -config C7 -budget 2000 -workload EDGE
package main

import (
	"flag"
	"fmt"
	"os"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/machine"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-opt:", err)
	os.Exit(1)
}

func main() {
	var (
		budget       = flag.Float64("budget", 5000, "budget in dollars (or budget increase with -upgrade)")
		workload     = flag.String("workload", "FFT", "paper workload: FFT, LU, Radix, EDGE, TPC-C")
		workloadFile = flag.String("workload-file", "", "JSON workload description (overrides -workload)")
		top          = flag.Int("top", 5, "how many ranked configurations to print")
		upgrade      = flag.Bool("upgrade", false, "upgrade an existing cluster instead of building one")
		config       = flag.String("config", "C7", "existing cluster (C1-C15) for -upgrade")
		delta        = flag.Float64("delta", 0, "coherence rate adjustment (default: paper's 0.124)")
	)
	flag.Parse()

	var wl core.Workload
	if *workloadFile != "" {
		f, err := os.Open(*workloadFile)
		if err != nil {
			fail(err)
		}
		var rerr error
		wl, rerr = core.ReadWorkload(f)
		f.Close()
		if rerr != nil {
			fail(fmt.Errorf("reading %s: %w", *workloadFile, rerr))
		}
	} else {
		var ok bool
		wl, ok = core.PaperWorkload(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
	}
	opts := core.Options{CoherenceAdjust: *delta}

	if *upgrade {
		existing, err := machine.ByName(*config)
		if err != nil {
			fail(err)
		}
		plan, err := cost.Upgrade(existing, *budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("existing:  %s (%s)\n", existing.Name, existing.Kind)
		fmt.Printf("upgrade:   %s\n", plan.To.Name)
		fmt.Printf("spend:     $%.0f of $%.0f\n", plan.UpgradeCost, *budget)
		fmt.Printf("E(Instr):  %.3f -> %.3f cycles (%.2fx speedup)\n",
			plan.OldEInstr, plan.NewEInstr, plan.Speedup)
		advice, err := cost.UpgradeAdvice(existing, wl, opts)
		if err == nil {
			fmt.Printf("principle: %s\n", advice)
		}
		return
	}

	best, all, err := cost.Optimize(*budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload:  %s — recommended class: %s\n", wl.Name, cost.Recommend(wl))
	fmt.Printf("budget:    $%.0f (%d feasible configurations)\n", *budget, len(all))
	fmt.Printf("winner:    %s at $%.0f, E(Instr) = %.3f cycles\n\n", best.Config.Name, best.Cost, best.EInstr)
	n := *top
	if n > len(all) {
		n = len(all)
	}
	fmt.Printf("top %d:\n", n)
	for i := 0; i < n; i++ {
		s := all[i]
		fmt.Printf("  %2d. %-45s $%-6.0f E=%.3f\n", i+1, s.Config.Name, s.Cost, s.EInstr)
	}
}
