package main

// Cluster chaos mode (-cluster N): N in-process chc-serve nodes on one
// consistent-hash ring, driven through the multi-base resilient client
// while nodes are killed and drained mid-soak. Invariants checked:
//
//   - responses are byte-identical whichever entry node answers, before
//     and after failures (the cluster acts as one cache)
//   - with every owner healthy, each signature is computed exactly once
//     cluster-wide: one client-visible miss, everything else hit/dedup
//   - a concurrent cold burst spread over all entry nodes dedups onto
//     one computation: misses==1, dedups+hits==K-1
//   - killing a node mid-soak never surfaces a malformed error body,
//     and every signature remains answerable with the recorded bytes
//   - a draining node completes accepted in-flight work, fails /readyz
//     with the JSON contract, and other nodes keep answering 200 (owner
//     drain degrades to local compute, not to user-visible 429s)

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"memhier/internal/client"
	"memhier/internal/cluster"
	"memhier/internal/faults"
	"memhier/internal/server"
)

// swapHandler lets the listener exist before the server it serves: the
// cluster config needs every node's URL, and each node's server needs
// the cluster config.
type swapHandler struct{ v atomic.Value }

func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(http.Handler).ServeHTTP(w, r)
}

// chaosNode is one in-process cluster member.
type chaosNode struct {
	name string
	ts   *httptest.Server
	srv  *server.Server
	clu  *cluster.Cluster
	swap *swapHandler
}

// startChaosCluster launches n nodes with fast probe cadence; injectors
// (optional, by node index) attach a fault profile to specific nodes.
func startChaosCluster(n int, injectors map[int]*faults.Injector) []*chaosNode {
	nodes := make([]*chaosNode, n)
	peers := make(map[string]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		nodes[i] = &chaosNode{name: fmt.Sprintf("n%d", i), ts: httptest.NewServer(sh), swap: sh}
		peers[nodes[i].name] = nodes[i].ts.URL
	}
	for i, nd := range nodes {
		clu, err := cluster.New(cluster.Config{
			Self:          nd.name,
			Peers:         peers,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  250 * time.Millisecond,
			ClientOptions: client.Options{
				MaxRetries:  1,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
			},
		})
		if err != nil {
			panic(err) // static local membership; cannot fail at runtime
		}
		cfg := server.Config{Forwarder: clu, RequestTimeout: 10 * time.Second}
		if inj, ok := injectors[i]; ok {
			cfg.Faults = inj
		}
		nd.srv = server.New(cfg)
		nd.clu = clu
		nd.swap.v.Store(nd.srv.Handler())
		clu.Start()
	}
	return nodes
}

func stopChaosCluster(nodes []*chaosNode) {
	for _, nd := range nodes {
		nd.clu.Stop()
		nd.ts.Close()
		nd.srv.Close()
	}
}

func nodeURLs(nodes []*chaosNode) []string {
	urls := make([]string, len(nodes))
	for i, nd := range nodes {
		urls[i] = nd.ts.URL
	}
	return urls
}

// runCluster is the -cluster N entry point.
func runCluster(n int, seed int64, requests, concurrency int) *report {
	r := &report{profile: fmt.Sprintf("cluster-%d", n), outcomes: make(map[string]int)}
	clusterSoakPhase(r, n, seed, requests, concurrency)
	clusterDedupPhase(r, n, seed)
	clusterKillPhase(r, n, seed, requests, concurrency)
	clusterDrainPhase(r, n)
	r.summary = "node kill + drain (no injected compute faults in soak)"
	return r
}

// ---- healthy soak: byte identity + compute-at-most-once ----

func clusterSoakPhase(r *report, n int, seed int64, requests, concurrency int) {
	nodes := startChaosCluster(n, nil)
	defer stopChaosCluster(nodes)
	sigs := soakMix()

	type obs struct {
		mu     sync.Mutex
		bodies map[string][]byte // guarded by mu: signature -> first 200 body
		misses map[string]int    // guarded by mu: client-visible miss verdicts
	}
	o := &obs{bodies: make(map[string][]byte), misses: make(map[string]int)}
	observer := func(a client.Attempt) {
		if a.Err == nil && a.Status >= 300 {
			checkErrorBody(r, a.Path, a.Status, a.Header, a.Body)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	work := make(chan signature, requests)
	for i := 0; i < requests; i++ {
		work <- sigs[rng.Intn(len(sigs))]
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(workerSeed int64) {
			defer wg.Done()
			// One multi-base client per worker: calls round-robin over
			// every entry node, so the same signature keeps entering the
			// cluster through different doors.
			c := client.NewMulti(nodeURLs(nodes), client.Options{
				MaxRetries:  2,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        workerSeed,
				Observer:    observer,
			})
			for sig := range work {
				meta, err := c.Post(context.Background(), sig.path, sig.body, nil)
				if err != nil {
					r.count("client-error")
					r.violate("cluster soak: %s: %v", sig.name, err)
					continue
				}
				r.count(fmt.Sprintf("%d %s", meta.Status, orDash(meta.Cache)))
				o.mu.Lock()
				if meta.Cache == "miss" {
					o.misses[sig.name]++
				}
				if prev, ok := o.bodies[sig.name]; ok {
					if !bytes.Equal(prev, meta.Body) {
						o.mu.Unlock()
						r.violate("cluster soak: %s: body diverged across entry nodes", sig.name)
						continue
					}
				} else {
					o.bodies[sig.name] = meta.Body
				}
				o.mu.Unlock()
			}
		}(seed + int64(w) + 1)
	}
	wg.Wait()
	r.soak = time.Since(start)

	// With every owner healthy, the cluster computed each signature at
	// most once: a second client-visible miss means two nodes ran the
	// same computation.
	for sig, miss := range o.misses {
		if miss > 1 {
			r.violate("cluster soak: %s: %d cluster-wide misses, want 1", sig, miss)
		}
	}

	// Explicit byte-identity sweep: every node answers every signature
	// with the recorded bytes, whichever door the request enters.
	for _, nd := range nodes {
		c := client.New(nd.ts.URL, client.Options{MaxRetries: 1})
		for _, sig := range sigs {
			golden, ok := o.bodies[sig.name]
			if !ok {
				continue // signature never drawn in this seed's mix
			}
			meta, err := c.Post(context.Background(), sig.path, sig.body, nil)
			if err != nil {
				r.violate("cluster sweep: %s via %s: %v", sig.name, nd.name, err)
				continue
			}
			if !bytes.Equal(golden, meta.Body) {
				r.violate("cluster sweep: %s via %s: bytes differ from first answer", sig.name, nd.name)
			}
		}
	}
	r.count("byte-identity sweep across nodes")
}

// ---- cross-node dedup burst ----

// clusterDedupPhase fires K identical cold requests spread over every
// entry node at once. Non-owner entries forward into the owner's single
// flight; entry-local twins dedup onto the forward. Cluster-wide that
// must come to exactly one computation: misses==1, dedups+hits==K-1.
func clusterDedupPhase(r *report, n int, seed int64) {
	const k = 12
	// The owner computes under an injected overrun, provably holding the
	// flight open while the burst lands. Every node gets the same
	// profile: only the node that actually computes injects.
	p := faults.Profile{
		Name: "cluster-dedup", LatencyProb: 1, Latency: 15 * time.Millisecond,
		OverrunProb: 1, Overrun: 100 * time.Millisecond,
	}
	injectors := make(map[int]*faults.Injector, n)
	for i := 0; i < n; i++ {
		injectors[i] = faults.NewInjector(p, seed+int64(i))
	}
	nodes := startChaosCluster(n, injectors)
	defer stopChaosCluster(nodes)

	body, _ := json.Marshal(server.PredictRequest{
		Config: server.ConfigSpec{Name: "C9"}, Workload: server.WorkloadSpec{Name: "edge"},
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	verdicts := make(map[string]int)
	first := []byte(nil)
	release := make(chan struct{})
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nd := nodes[i%len(nodes)]
			<-release
			resp, err := nd.ts.Client().Post(nd.ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				r.violate("cluster dedup: transport error via %s: %v", nd.name, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				r.violate("cluster dedup: status %d via %s: %s", resp.StatusCode, nd.name, truncate(b))
				return
			}
			mu.Lock()
			defer mu.Unlock()
			verdicts[orDash(resp.Header.Get("X-Cache"))]++
			if first == nil {
				first = b
			} else if !bytes.Equal(first, b) {
				r.violate("cluster dedup: concurrent twins got different bodies across entry nodes")
			}
		}(i)
	}
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if verdicts["miss"] != 1 {
		r.violate("cluster dedup: %d cluster-wide misses for %d concurrent twins, want exactly 1", verdicts["miss"], k)
	}
	if verdicts["miss"]+verdicts["dedup"]+verdicts["hit"] != k {
		r.violate("cluster dedup: verdicts %v do not account for %d requests", verdicts, k)
	}
	if verdicts["dedup"] == 0 {
		r.violate("cluster dedup: no request deduplicated onto the in-flight computation")
	}
	r.count(fmt.Sprintf("cluster-dedup: 1 miss + %d dedup + %d hit", verdicts["dedup"], verdicts["hit"]))
}

// ---- node kill mid-soak ----

// clusterKillPhase records golden bodies, then kills one node partway
// through a soak. Clients fail over to surviving entry nodes; keys the
// dead node owned degrade to local compute. Every answer must stay 200
// with the golden bytes, and every error body must honor the contract.
func clusterKillPhase(r *report, n int, seed int64, requests, concurrency int) {
	nodes := startChaosCluster(n, nil)
	defer stopChaosCluster(nodes)
	sigs := soakMix()
	victim := nodes[len(nodes)-1]

	// Golden bodies, recorded through node 0 while everyone is healthy.
	golden := make(map[string][]byte, len(sigs))
	c0 := client.New(nodes[0].ts.URL, client.Options{MaxRetries: 1})
	for _, sig := range sigs {
		meta, err := c0.Post(context.Background(), sig.path, sig.body, nil)
		if err != nil {
			r.violate("cluster kill: warmup %s: %v", sig.name, err)
			return
		}
		golden[sig.name] = meta.Body
	}

	observer := func(a client.Attempt) {
		if a.Err == nil && a.Status >= 300 {
			checkErrorBody(r, a.Path, a.Status, a.Header, a.Body)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	work := make(chan signature, requests)
	for i := 0; i < requests; i++ {
		work <- sigs[rng.Intn(len(sigs))]
	}
	close(work)

	var served atomic.Int64
	killAt := int64(requests / 3)
	killed := make(chan struct{})
	go func() {
		for served.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		// Partition the victim: its listener goes away mid-flight, for
		// clients and peers alike.
		victim.ts.CloseClientConnections()
		victim.ts.Close()
		close(killed)
	}()

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(workerSeed int64) {
			defer wg.Done()
			c := client.NewMulti(nodeURLs(nodes), client.Options{
				MaxRetries:  4, // enough failovers to walk past the dead base
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        workerSeed,
				Observer:    observer,
			})
			for sig := range work {
				meta, err := c.Post(context.Background(), sig.path, sig.body, nil)
				served.Add(1)
				if err != nil {
					r.count("kill: client-error")
					r.violate("cluster kill: %s: %v", sig.name, err)
					continue
				}
				r.count(fmt.Sprintf("kill: %d %s", meta.Status, orDash(meta.Cache)))
				if !bytes.Equal(golden[sig.name], meta.Body) {
					r.violate("cluster kill: %s: bytes diverged after node death", sig.name)
				}
			}
		}(seed + int64(w) + 100)
	}
	wg.Wait()
	<-killed

	// Post-mortem sweep: every surviving node still answers every
	// signature with the golden bytes (dead-owner keys via fallback).
	for _, nd := range nodes[:len(nodes)-1] {
		c := client.New(nd.ts.URL, client.Options{MaxRetries: 1})
		for _, sig := range sigs {
			meta, err := c.Post(context.Background(), sig.path, sig.body, nil)
			if err != nil {
				r.violate("cluster kill: post-mortem %s via %s: %v", sig.name, nd.name, err)
				continue
			}
			if !bytes.Equal(golden[sig.name], meta.Body) {
				r.violate("cluster kill: post-mortem %s via %s: bytes differ", sig.name, nd.name)
			}
		}
	}
	r.count("kill: post-mortem sweep on survivors")
}

// ---- drain mid-traffic ----

// clusterDrainPhase drains one node while traffic continues elsewhere:
// the draining node completes its accepted in-flight request and fails
// /readyz with the contract, while fresh keys entering healthy nodes
// never see a user-visible 429 — keys owned by the draining node degrade
// to local compute on the entry node.
func clusterDrainPhase(r *report, n int) {
	// Only the drain target computes slowly, so its in-flight request is
	// provably still running when the drain begins.
	p := faults.Profile{Name: "drain-slow", OverrunProb: 1, Overrun: 150 * time.Millisecond}
	nodes := startChaosCluster(n, map[int]*faults.Injector{n - 1: faults.NewInjector(p, 1)})
	defer stopChaosCluster(nodes)
	entry, target := nodes[0], nodes[n-1]

	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(server.ValidateRequest{
			Config: server.ConfigSpec{Name: "C1"}, Workload: "fft", Divisor: 64,
		})
		close(started)
		resp, err := target.ts.Client().Post(target.ts.URL+"/v1/validate", "application/json", bytes.NewReader(body))
		if err != nil {
			result <- fmt.Errorf("in-flight request: %w", err)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			result <- fmt.Errorf("in-flight request finished %d: %s", resp.StatusCode, truncate(b))
			return
		}
		result <- nil
	}()

	<-started
	time.Sleep(30 * time.Millisecond) // let it reach the 150ms compute overrun
	target.srv.BeginDrain()

	// The draining node's readiness fails with the JSON contract.
	resp, err := target.ts.Client().Get(target.ts.URL + "/readyz")
	if err != nil {
		r.violate("cluster drain: readyz: %v", err)
	} else {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			r.violate("cluster drain: readyz status %d during drain, want 503", resp.StatusCode)
		} else {
			checkErrorBody(r, "/readyz", resp.StatusCode, resp.Header, b)
		}
	}

	// Fresh keys through a healthy entry node: some are owned by the
	// draining target, and must degrade to local compute — a 200, never
	// a user-visible 429.
	for i := 0; i < 24; i++ {
		body, _ := json.Marshal(server.PredictRequest{
			Config:   server.ConfigSpec{Name: "C4"},
			Workload: server.WorkloadSpec{Name: "fft"},
			Delta:    float64(i+1) / 1000,
		})
		resp, err := entry.ts.Client().Post(entry.ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			r.violate("cluster drain: fresh key %d: %v", i, err)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			r.violate("cluster drain: fresh key %d via healthy node: status %d body %s", i, resp.StatusCode, truncate(b))
		}
	}
	r.count("drain: fresh keys via healthy node all 200")

	select {
	case err := <-result:
		if err != nil {
			r.violate("cluster drain: %v", err)
		} else {
			r.count("drain: in-flight on draining node completed 200")
		}
	case <-time.After(30 * time.Second):
		r.violate("cluster drain: in-flight request never completed")
	}
}
