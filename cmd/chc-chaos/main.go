// Command chc-chaos is the soak/chaos harness for chc-serve: it starts
// in-process servers under each fault-injection profile, drives randomized
// request mixes through the resilient client, and checks the service's
// resilience invariants:
//
//   - cached responses are byte-identical across fault injection: a
//     request signature that ever answered 200 always answers those bytes
//   - single-flight dedup computes each cold key exactly once, even with
//     injected latency holding the flight open
//   - each signature is successfully computed at most once (one 200 miss);
//     everything after comes from the cache
//   - shed requests always carry 429 + Retry-After and the JSON error
//     contract
//   - every non-2xx body is JSON with a machine-readable code and the
//     request ID echoed from the response header
//   - drain completes in-flight work: /readyz fails during drain while
//     accepted requests still finish with 200
//
// Exit status 0 means every invariant held under every profile; any
// violation prints and exits 1. The run is seed-driven: the same -seed
// replays the same request mix and the same injected fault sequence.
//
// The -cluster N flag switches to cluster chaos (cluster.go): N
// in-process nodes on one consistent-hash ring, soaked through the
// multi-base client while a node is killed and another drained, with
// byte-identity, compute-at-most-once, and error-contract invariants
// checked throughout.
//
// Usage:
//
//	chc-chaos -seed 1 -profile all -requests 400 -concurrency 8
//	chc-chaos -cluster 3 -requests 400 -concurrency 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"memhier/internal/client"
	"memhier/internal/faults"
	"memhier/internal/server"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "seed for the request mix and the fault injectors")
		profileName = flag.String("profile", "all", "fault profile to run (or \"all\")")
		requests    = flag.Int("requests", 400, "soak requests per profile")
		concurrency = flag.Int("concurrency", 8, "concurrent soak workers")
		clusterN    = flag.Int("cluster", 0, "run the cluster chaos mode with this many in-process nodes instead of the single-node profiles")
	)
	flag.Parse()

	if *clusterN > 0 {
		if *clusterN < 2 {
			fmt.Fprintln(os.Stderr, "chc-chaos: -cluster needs at least 2 nodes")
			os.Exit(2)
		}
		r := runCluster(*clusterN, *seed, *requests, *concurrency)
		r.print()
		if r.failed() {
			fmt.Println("\nchc-chaos: FAIL — invariant violations above")
			os.Exit(1)
		}
		fmt.Println("\nchc-chaos: all cluster invariants held")
		return
	}

	var profiles []faults.Profile
	if *profileName == "all" {
		for _, name := range faults.ProfileNames() {
			p, err := faults.ProfileByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chc-chaos: %v\n", err)
				os.Exit(2)
			}
			profiles = append(profiles, p)
		}
	} else {
		p, err := faults.ProfileByName(*profileName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chc-chaos: %v\n", err)
			os.Exit(2)
		}
		profiles = []faults.Profile{p}
	}

	failed := false
	for _, p := range profiles {
		r := runProfile(p, *seed, *requests, *concurrency)
		r.print()
		if r.failed() {
			failed = true
		}
	}
	if failed {
		fmt.Println("\nchc-chaos: FAIL — invariant violations above")
		os.Exit(1)
	}
	fmt.Println("\nchc-chaos: all invariants held under all profiles")
}

// report accumulates one profile's results.
type report struct {
	profile    string
	mu         sync.Mutex
	outcomes   map[string]int // guarded by mu: "200 hit", "503 transient", "breaker-open", ...
	violations []string       // guarded by mu
	summary    string
	soak       time.Duration
}

func (r *report) violate(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.violations) < 25 {
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

// failed reports whether any violation was recorded.
func (r *report) failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.violations) > 0
}

func (r *report) count(outcome string) {
	r.mu.Lock()
	r.outcomes[outcome]++
	r.mu.Unlock()
}

func (r *report) print() {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Printf("=== profile %s (soak %v) ===\n", r.profile, r.soak.Round(time.Millisecond))
	var keys []string
	for k := range r.outcomes {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ { // insertion sort: tiny n, no extra imports
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fmt.Printf("  %-28s %d\n", k, r.outcomes[k])
	}
	fmt.Printf("  injected: %s\n", r.summary)
	if len(r.violations) == 0 {
		fmt.Println("  PASS")
		return
	}
	for _, v := range r.violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
}

// signature is one deterministic request template in the soak mix.
type signature struct {
	name string
	path string
	body any
}

// soakMix returns the request templates the soak phase cycles through.
// Distinct signatures stay far below the cache capacity, so a successful
// response is never evicted — the "computed at most once" invariant holds.
func soakMix() []signature {
	var sigs []signature
	for _, cfg := range []string{"C1", "C4", "C8", "C12"} {
		for _, wl := range []string{"fft", "lu", "radix"} {
			sigs = append(sigs, signature{
				name: "predict/" + cfg + "/" + wl,
				path: "/v1/predict",
				body: server.PredictRequest{Config: server.ConfigSpec{Name: cfg}, Workload: server.WorkloadSpec{Name: wl}},
			})
		}
	}
	sigs = append(sigs,
		signature{"optimize/radix", "/v1/optimize", server.OptimizeRequest{Budget: 5000, Workload: server.WorkloadSpec{Name: "radix"}}},
		signature{"advise/C1/tpcc", "/v1/advise", server.AdviseRequest{Config: server.ConfigSpec{Name: "C1"}, Budget: 3000, Workload: server.WorkloadSpec{Name: "tpcc"}}},
		signature{"fit/small", "/v1/fit", server.FitRequest{
			Xs: []float64{1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20},
			Ps: []float64{0.35, 0.58, 0.79, 0.92, 0.985},
		}},
		signature{"validate/C4/fft", "/v1/validate", server.ValidateRequest{Config: server.ConfigSpec{Name: "C4"}, Workload: "fft", Divisor: 64}},
	)
	return sigs
}

func runProfile(p faults.Profile, seed int64, requests, concurrency int) *report {
	r := &report{profile: p.Name, outcomes: make(map[string]int)}
	inj := faults.NewInjector(p, seed)
	s := server.New(server.Config{Faults: inj, RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())

	soakPhase(r, ts, s, seed, requests, concurrency)
	r.summary = inj.Summary()
	ts.Close()
	s.Close()

	// The remaining phases run on dedicated servers whose fault profiles
	// are chosen to provoke the specific behavior under test; they execute
	// under every profile run so "-profile errors" still verifies dedup,
	// shedding, and drain.
	dedupPhase(r, seed)
	shedPhase(r, seed)
	drainPhase(r, seed)
	return r
}

// ---- soak ----

func soakPhase(r *report, ts *httptest.Server, s *server.Server, seed int64, requests, concurrency int) {
	sigs := soakMix()

	type obs struct {
		mu     sync.Mutex
		bodies map[string][]byte // guarded by mu: signature -> first 200 body
		misses map[string]int    // guarded by mu: signature -> successful (200) misses
	}
	o := &obs{bodies: make(map[string][]byte), misses: make(map[string]int)}

	// The observer sees every wire attempt, including retried ones — the
	// error contract must hold on each, not just the final answer.
	observer := func(a client.Attempt) {
		if a.Err != nil || a.Status == 0 {
			r.count("transport-error")
			return
		}
		if a.Status >= 300 {
			checkErrorBody(r, a.Path, a.Status, a.Header, a.Body)
		}
	}

	// Requests per worker are drawn from one seeded stream, so the mix is
	// reproducible regardless of scheduling.
	rng := rand.New(rand.NewSource(seed))
	work := make(chan signature, requests)
	for i := 0; i < requests; i++ {
		work <- sigs[rng.Intn(len(sigs))]
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(workerSeed int64) {
			defer wg.Done()
			c := client.New(ts.URL, client.Options{
				HTTPClient:       ts.Client(),
				MaxRetries:       3,
				BaseBackoff:      2 * time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				RetryAfterCap:    25 * time.Millisecond,
				FailureThreshold: 8,
				OpenFor:          25 * time.Millisecond,
				Seed:             workerSeed,
				Observer:         observer,
			})
			ctx := context.Background()
			for sig := range work {
				meta, err := c.Post(ctx, sig.path, sig.body, nil)
				switch {
				case err == nil:
					r.count(fmt.Sprintf("%d %s", meta.Status, orDash(meta.Cache)))
					o.mu.Lock()
					if meta.Cache == "miss" {
						o.misses[sig.name]++
					}
					if prev, ok := o.bodies[sig.name]; ok {
						if !bytes.Equal(prev, meta.Body) {
							o.mu.Unlock()
							r.violate("soak: %s: 200 body diverged from the first 200 (cache identity broken)", sig.name)
							continue
						}
					} else {
						o.bodies[sig.name] = meta.Body
					}
					o.mu.Unlock()
				case errors.Is(err, client.ErrCircuitOpen):
					r.count("breaker-open")
				default:
					var apiErr *client.APIError
					if errors.As(err, &apiErr) {
						r.count(fmt.Sprintf("%d %s (final)", apiErr.Status, apiErr.Code))
					} else {
						r.count("client-error")
					}
				}
			}
		}(seed + int64(w) + 1)
	}
	wg.Wait()
	r.soak = time.Since(start)

	for sig, n := range o.misses {
		if n > 1 {
			r.violate("soak: %s: computed successfully %d times (want at most one 200 miss)", sig, n)
		}
	}
}

// checkErrorBody enforces the non-2xx contract on one wire response.
func checkErrorBody(r *report, path string, status int, header http.Header, body []byte) {
	where := fmt.Sprintf("%s -> %d", path, status)
	if ct := header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		r.violate("%s: Content-Type %q, want application/json", where, ct)
	}
	var resp server.ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		r.violate("%s: non-JSON error body %q", where, truncate(body))
		return
	}
	if resp.Code == "" {
		r.violate("%s: error body has no machine-readable code", where)
	}
	if resp.RequestID == "" {
		r.violate("%s: error body has no request_id", where)
	}
	if hid := header.Get("X-Request-ID"); hid != "" && resp.RequestID != hid {
		r.violate("%s: body request_id %q != header %q", where, resp.RequestID, hid)
	}
	if status == http.StatusTooManyRequests {
		if header.Get("Retry-After") == "" {
			r.violate("%s: 429 without Retry-After header", where)
		}
		if resp.RetryAfterSeconds < 1 {
			r.violate("%s: 429 without retry_after_seconds in body", where)
		}
	}
}

// ---- dedup burst ----

// dedupPhase fires K identical cold requests concurrently at a server
// whose profile injects entry latency and a compute overrun, so the
// single flight is provably held open while the burst lands: exactly one
// compute (one miss), everyone else deduplicates onto it.
func dedupPhase(r *report, seed int64) {
	const k = 12
	p := faults.Profile{
		Name: "dedup-burst", LatencyProb: 1, Latency: 15 * time.Millisecond,
		OverrunProb: 1, Overrun: 100 * time.Millisecond,
	}
	s := server.New(server.Config{Faults: faults.NewInjector(p, seed)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	body, _ := json.Marshal(server.PredictRequest{
		Config: server.ConfigSpec{Name: "C9"}, Workload: server.WorkloadSpec{Name: "edge"},
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	first := []byte(nil)
	release := make(chan struct{})
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				r.violate("dedup: transport error: %v", err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				r.violate("dedup: status %d body %s", resp.StatusCode, truncate(b))
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if first == nil {
				first = b
			} else if !bytes.Equal(first, b) {
				r.violate("dedup: concurrent twins got different 200 bodies")
			}
		}()
	}
	close(release)
	wg.Wait()

	m := s.Metrics()
	misses, _ := m["cache_misses"].(int64)
	dedup, _ := m["dedup_waits"].(int64)
	hits, _ := m["cache_hits"].(int64)
	if misses != 1 {
		r.violate("dedup: %d misses for %d identical concurrent requests, want exactly 1", misses, k)
	}
	if dedup+hits != k-1 {
		r.violate("dedup: misses=%d dedup=%d hits=%d do not account for %d requests", misses, dedup, hits, k)
	}
	if dedup == 0 {
		r.violate("dedup: no request deduplicated onto the in-flight computation")
	}
	r.count(fmt.Sprintf("dedup-burst: 1 miss + %d dedup + %d hit", dedup, hits))
}

// ---- shedding ----

// shedPhase floods a one-worker, zero-queue server with distinct
// simulation requests: everything beyond the single in-flight simulation
// must shed with the full 429 contract, and at least one request must
// still succeed.
func shedPhase(r *report, seed int64) {
	p := faults.Profile{Name: "shed-flood", OverrunProb: 1, Overrun: 50 * time.Millisecond}
	s := server.New(server.Config{
		SimWorkers: 1, SimQueueDepth: 0,
		Faults: faults.NewInjector(p, seed),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	kernels := []string{"fft", "lu", "radix", "edge", "tpcc"}
	divisors := []int{32, 64, 128}
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed, ok200 := 0, 0
	for _, kern := range kernels {
		for _, div := range divisors {
			wg.Add(1)
			go func(kern string, div int) {
				defer wg.Done()
				body, _ := json.Marshal(server.ValidateRequest{
					Config: server.ConfigSpec{Name: "C4"}, Workload: kern, Divisor: div,
				})
				resp, err := ts.Client().Post(ts.URL+"/v1/validate", "application/json", bytes.NewReader(body))
				if err != nil {
					r.violate("shed: transport error: %v", err)
					return
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200++
				case http.StatusTooManyRequests:
					shed++
					checkErrorBody(r, "/v1/validate", resp.StatusCode, resp.Header, b)
				default:
					r.violate("shed: unexpected status %d body %s", resp.StatusCode, truncate(b))
				}
			}(kern, div)
		}
	}
	wg.Wait()
	if shed == 0 {
		r.violate("shed: flood of %d sims against 1 worker produced no 429", len(kernels)*len(divisors))
	}
	if ok200 == 0 {
		r.violate("shed: no request succeeded during the flood")
	}
	r.count(fmt.Sprintf("shed-flood: %d ok, %d shed", ok200, shed))
}

// ---- drain ----

// drainPhase verifies graceful shutdown semantics: once draining, /readyz
// fails with the JSON contract while the already-accepted slow request
// still completes with 200.
func drainPhase(r *report, seed int64) {
	p := faults.Profile{Name: "drain-slow", OverrunProb: 1, Overrun: 150 * time.Millisecond}
	s := server.New(server.Config{Faults: faults.NewInjector(p, seed)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(server.ValidateRequest{
			Config: server.ConfigSpec{Name: "C1"}, Workload: "fft", Divisor: 64,
		})
		close(started)
		resp, err := ts.Client().Post(ts.URL+"/v1/validate", "application/json", bytes.NewReader(body))
		if err != nil {
			result <- fmt.Errorf("in-flight request: %w", err)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			result <- fmt.Errorf("in-flight request finished %d: %s", resp.StatusCode, truncate(b))
			return
		}
		result <- nil
	}()

	<-started
	time.Sleep(30 * time.Millisecond) // let the request reach its 150ms compute overrun
	s.BeginDrain()

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		r.violate("drain: readyz: %v", err)
	} else {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			r.violate("drain: readyz status %d during drain, want 503", resp.StatusCode)
		} else {
			checkErrorBody(r, "/readyz", resp.StatusCode, resp.Header, b)
		}
	}

	select {
	case err := <-result:
		if err != nil {
			r.violate("drain: %v", err)
		} else {
			r.count("drain: in-flight completed 200")
		}
	case <-time.After(30 * time.Second):
		r.violate("drain: in-flight request never completed")
	}
	s.Close() // waits for accepted pool work; must not hang after drain
}

// ---- helpers ----

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func truncate(b []byte) string {
	if len(b) > 160 {
		return string(b[:160]) + "..."
	}
	return strings.TrimSpace(string(b))
}
