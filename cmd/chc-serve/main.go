// Command chc-serve runs the memory-hierarchy prediction service: the
// Du–Zhang analytical model, budget optimizer, upgrade advisor, locality
// fitter, and execution-driven validator behind an HTTP JSON API.
//
// Endpoints:
//
//	POST /v1/predict   {"config":{"name":"C4"},"workload":{"name":"fft"}}
//	POST /v1/optimize  {"budget":5000,"workload":{"name":"radix"}}
//	POST /v1/advise    {"config":{"name":"C1"},"budget":3000,"workload":{"name":"tpcc"}}
//	POST /v1/fit       {"xs":[...],"ps":[...]}
//	POST /v1/validate  {"config":{"name":"C4"},"workload":"fft"}
//	POST /v1/sweep     {"configs":[...],"workloads":[...],"budgets":[...]}   (NDJSON stream)
//	POST /v1/batch     {"requests":[{...predict...},...]}                   (NDJSON stream)
//	GET  /healthz /readyz /metrics
//
// Identical requests are answered from a sharded LRU cache with
// single-flight deduplication; /v1/validate runs on a bounded worker pool
// that sheds load with 429 + Retry-After once the queue is full. SIGINT or
// SIGTERM triggers a graceful shutdown: /readyz starts failing, in-flight
// requests complete, then the process exits.
//
// The -bench flag turns the binary into a load generator instead: it
// starts an in-process server, replays a mixed request stream at the
// given concurrency, and writes a throughput record (for BENCH_PR3.json).
//
// Cluster mode: -node and -peers turn N chc-serve processes into one
// sharded response cache over a consistent-hash ring — each node
// forwards misses on peer-owned keys to the owner and falls back to
// local compute when the owner is down or draining. Every node must be
// started with the same -peers, -replicas, -vnodes, and -ring-seed.
// See README "Running a cluster".
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"memhier/internal/cluster"
	"memhier/internal/faults"
	"memhier/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheSize  = flag.Int("cache", 4096, "result cache entries")
		simWorkers = flag.Int("sim-workers", 0, "simulation workers (default: NumCPU)")
		simQueue   = flag.Int("sim-queue", 0, "simulation queue depth (default: 2x workers)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "analytical request deadline")
		simTimeout = flag.Duration("sim-timeout", 5*time.Minute, "/v1/validate deadline")
		sweepWork  = flag.Int("sweep-workers", 0, "grid evaluation workers per sweep (default: NumCPU)")
		sweepConc  = flag.Int("sweep-concurrency", 0, "concurrent streaming grids before shedding (default: 2)")
		sweepTime  = flag.Duration("sweep-timeout", 2*time.Minute, "/v1/sweep and /v1/batch deadline")
		sweepMax   = flag.Int("max-sweep-points", 0, "largest accepted grid (default: 4096)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		bench      = flag.Bool("bench", false, "run the load generator instead of serving")
		benchConc  = flag.Int("bench-concurrency", 8, "load generator client goroutines")
		benchDur   = flag.Duration("bench-duration", 3*time.Second, "load generator run time")
		benchOut   = flag.String("bench-out", "", "write the throughput record to this file (default stdout)")
		faultName  = flag.String("faults", "", "inject faults from this profile (none, latency, errors, panics, saturation, timeouts, mixed); empty disables injection")
		faultSeed  = flag.Int64("faults-seed", 1, "fault injection seed (same seed, same fault sequence)")
		nodeName   = flag.String("node", "", "this node's name in cluster mode (must be a key of -peers)")
		peerList   = flag.String("peers", "", `cluster membership as "name=url,name=url,..." (every node, including this one); empty runs single-node`)
		replicas   = flag.Int("replicas", 1, "owners per key on the cluster ring (2 replicates hot keys)")
		vnodes     = flag.Int("vnodes", 0, "virtual ring points per node (default: ring's built-in)")
		ringSeed   = flag.Uint64("ring-seed", 0, "ring placement seed; must match on every node")
		probeEvery = flag.Duration("probe-interval", 2*time.Second, "peer /readyz health-probe period")
	)
	flag.Parse()

	cfg := server.Config{
		CacheEntries:     *cacheSize,
		SimWorkers:       *simWorkers,
		SimQueueDepth:    *simQueue,
		RequestTimeout:   *reqTimeout,
		SimTimeout:       *simTimeout,
		SweepWorkers:     *sweepWork,
		SweepConcurrency: *sweepConc,
		SweepTimeout:     *sweepTime,
		MaxSweepPoints:   *sweepMax,
	}
	if *faultName != "" {
		profile, err := faults.ProfileByName(*faultName)
		if err != nil {
			log.Fatalf("chc-serve: %v", err)
		}
		cfg.Faults = faults.NewInjector(profile, *faultSeed)
		log.Printf("chc-serve: fault injection enabled: profile %s, seed %d", profile.Name, *faultSeed)
	}

	var clu *cluster.Cluster
	if *peerList != "" {
		peers, err := parsePeers(*peerList)
		if err != nil {
			log.Fatalf("chc-serve: %v", err)
		}
		clu, err = cluster.New(cluster.Config{
			Self:          *nodeName,
			Peers:         peers,
			Replicas:      *replicas,
			VirtualNodes:  *vnodes,
			Seed:          *ringSeed,
			ProbeInterval: *probeEvery,
		})
		if err != nil {
			log.Fatalf("chc-serve: %v", err)
		}
		cfg.Forwarder = clu
		log.Printf("chc-serve: cluster mode: node %s, %d members, %d replica(s) per key", *nodeName, len(peers), *replicas)
	}

	if *bench {
		if err := runBench(cfg, *benchConc, *benchDur, *benchOut); err != nil {
			log.Fatalf("chc-serve -bench: %v", err)
		}
		return
	}

	s := server.New(cfg)
	s.Publish()
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if clu != nil {
		clu.Start()
	}
	log.Printf("chc-serve listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("chc-serve: %v", err)
	case sig := <-sigc:
		log.Printf("chc-serve: %v: draining", sig)
	}

	// Graceful shutdown: fail readiness first so load balancers and peer
	// probes stop routing here, then drain HTTP handlers, then the
	// simulation pool. Forwarded work arriving mid-drain is refused with
	// the draining body, telling peers to fall back to local compute.
	s.BeginDrain()
	if clu != nil {
		clu.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("chc-serve: shutdown: %v", err)
	}
	s.Close()
	log.Print("chc-serve: drained")
}

// parsePeers parses the -peers flag: comma-separated name=url pairs
// naming every cluster member, this node included.
func parsePeers(list string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf(`-peers entry %q is not "name=url"`, part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("-peers names %q twice", name)
		}
		peers[name] = url
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

// benchMix is the load generator's request stream: a cache-friendly
// predict mix over the paper's configurations and workloads plus the
// occasional optimize call.
func benchMix() []struct{ path, body string } {
	var mix []struct{ path, body string }
	for _, c := range []string{"C1", "C4", "C8", "C11", "C15"} {
		for _, w := range []string{"fft", "lu", "radix", "edge", "tpcc"} {
			mix = append(mix, struct{ path, body string }{
				"/v1/predict",
				fmt.Sprintf(`{"config":{"name":%q},"workload":{"name":%q}}`, c, w),
			})
		}
	}
	mix = append(mix, struct{ path, body string }{
		"/v1/optimize", `{"budget":5000,"workload":{"name":"radix"}}`,
	})
	return mix
}

// runBench drives an in-process handler (no sockets: measures the service
// stack, not the kernel's TCP path) and writes a JSON throughput record.
func runBench(cfg server.Config, concurrency int, duration time.Duration, out string) error {
	s := server.New(cfg)
	defer s.Close()
	h := s.Handler()
	mix := benchMix()

	var requests, failures atomic.Int64
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for time.Now().Before(deadline) {
				m := mix[i%len(mix)]
				i++
				req, err := http.NewRequest(http.MethodPost, m.path, bytes.NewReader([]byte(m.body)))
				if err != nil {
					failures.Add(1)
					continue
				}
				rec := &countingWriter{header: make(http.Header)}
				h.ServeHTTP(rec, req)
				requests.Add(1)
				if rec.status >= 400 {
					failures.Add(1)
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	record := map[string]any{
		"benchmark":      "chc-serve-load",
		"concurrency":    concurrency,
		"duration_s":     elapsed.Seconds(),
		"requests":       requests.Load(),
		"failures":       failures.Load(),
		"requests_per_s": float64(requests.Load()) / elapsed.Seconds(),
		"metrics":        s.Metrics(),
	}
	b, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// countingWriter is a minimal ResponseWriter for the in-process load
// generator: it discards bodies and keeps the status.
type countingWriter struct {
	header http.Header
	status int
}

func (w *countingWriter) Header() http.Header { return w.header }
func (w *countingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return io.Discard.Write(b)
}
func (w *countingWriter) WriteHeader(code int) { w.status = code }
