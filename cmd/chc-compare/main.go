// Command chc-compare puts two platform configurations head to head across
// the paper's workload suite: modeled E(Instr), cost, and the per-level
// breakdown of where they differ — the purchasing question ("these two
// quotes, which one?") the paper's model exists to answer quickly.
//
// Usage:
//
//	chc-compare -a C8 -b C10
//	chc-compare -a C5 -b C11 -workload Radix
package main

import (
	"flag"
	"fmt"
	"os"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/machine"
	"memhier/internal/tabulate"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-compare:", err)
	os.Exit(1)
}

func main() {
	var (
		aName    = flag.String("a", "C8", "first configuration (C1-C15)")
		bName    = flag.String("b", "C10", "second configuration (C1-C15)")
		workload = flag.String("workload", "", "compare on one workload only (default: the whole suite)")
		delta    = flag.Float64("delta", 0, "coherence rate adjustment (default: paper's 0.124)")
	)
	flag.Parse()

	a, err := machine.ByName(*aName)
	if err != nil {
		fail(err)
	}
	b, err := machine.ByName(*bName)
	if err != nil {
		fail(err)
	}
	opts := core.Options{CoherenceAdjust: *delta}
	cat := cost.DefaultCatalog()

	costA, err := cat.ClusterCost(a)
	if err != nil {
		fail(err)
	}
	costB, err := cat.ClusterCost(b)
	if err != nil {
		fail(err)
	}
	fmt.Printf("A: %s — %v, n=%d, N=%d, %dKB cache, %dMB memory, %v ($%.0f)\n",
		a.Name, a.Kind, a.Procs, a.N, a.CacheBytes>>10, a.MemoryBytes>>20, a.Net, costA)
	fmt.Printf("B: %s — %v, n=%d, N=%d, %dKB cache, %dMB memory, %v ($%.0f)\n\n",
		b.Name, b.Kind, b.Procs, b.N, b.CacheBytes>>10, b.MemoryBytes>>20, b.Net, costB)

	wls := append(core.PaperWorkloads(), core.PaperTPCC())
	if *workload != "" {
		wl, ok := core.PaperWorkload(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		wls = []core.Workload{wl}
	}

	t := tabulate.New("modeled E(Instr), cycles (lower is better)",
		"Program", a.Name, b.Name, "winner", "factor")
	winsA, winsB := 0, 0
	for _, wl := range wls {
		ra, err := core.Evaluate(a, wl, opts)
		if err != nil {
			fail(fmt.Errorf("%s on %s: %w", wl.Name, a.Name, err))
		}
		rb, err := core.Evaluate(b, wl, opts)
		if err != nil {
			fail(fmt.Errorf("%s on %s: %w", wl.Name, b.Name, err))
		}
		winner, factor := a.Name, rb.EInstr/ra.EInstr
		if rb.EInstr < ra.EInstr {
			winner, factor = b.Name, ra.EInstr/rb.EInstr
			winsB++
		} else {
			winsA++
		}
		t.AddRow(wl.Name,
			fmt.Sprintf("%.3f", ra.EInstr),
			fmt.Sprintf("%.3f", rb.EInstr),
			winner, fmt.Sprintf("%.2fx", factor))
	}
	t.Render(os.Stdout)
	fmt.Printf("\nscore: %s %d — %d %s; dollars per unit speed favour the cheaper box when factors are near 1\n",
		a.Name, winsA, winsB, b.Name)

	if len(wls) == 1 {
		// Per-level breakdown for the single-workload comparison.
		for _, pair := range []struct {
			cfg machine.Config
		}{{a}, {b}} {
			res, err := core.Evaluate(pair.cfg, wls[0], opts)
			if err != nil {
				fail(err)
			}
			fmt.Printf("\n%s levels for %s:\n", pair.cfg.Name, wls[0].Name)
			for _, lv := range res.Levels {
				fmt.Printf("  %-14s miss=%.4f contended=%.1f cycles/ref=%.3f\n",
					lv.Name, lv.MissFraction, lv.Contended, lv.CyclesPerRef)
			}
		}
	}
}
