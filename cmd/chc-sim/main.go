// Command chc-sim runs one of the five execution-driven memory-hierarchy
// simulators on an instrumented workload, printing the simulated E(Instr)
// and the access-class breakdown.
//
// Usage:
//
//	chc-sim -config C8 -workload fft
//	chc-sim -config C8 -workload radix -divisor 16   # capacity-scaled validation run
//	chc-sim -config C1 -workload edge -paper-scale
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"memhier/internal/machine"
	"memhier/internal/profiling"
	"memhier/internal/sim/backend"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-sim:", err)
	os.Exit(1)
}

func main() {
	var (
		config     = flag.String("config", "C1", "catalog configuration C1-C15 or a modern preset (modern-2s-server, cloud-vm-8)")
		workload   = flag.String("workload", "fft", "workload: fft, lu, radix, edge, tpcc")
		divisor    = flag.Int("divisor", 1, "divide cache/memory capacities by this factor")
		paperScale = flag.Bool("paper-scale", false, "use the paper's full problem sizes (slow, memory-hungry)")
		phases     = flag.Bool("phases", false, "print the per-phase profile (barrier-delimited)")
		stream     = flag.Bool("stream", false, "stream the generator into the simulator (constant memory; use for -paper-scale)")
		engine     = flag.String("engine", "seq", "simulation engine: seq or parallel (bit-identical results; for A/B runs)")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker goroutines for -engine parallel")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit (inspect with `go tool pprof`)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	cfg, err := machine.ByName(*config)
	if err != nil {
		fail(err)
	}
	cfg, err = cfg.Scaled(*divisor)
	if err != nil {
		fail(err)
	}

	scale := workloads.ScaleSmall
	if *paperScale {
		scale = workloads.ScalePaper
	}
	k, err := workloads.ByName(*workload, scale)
	if err != nil {
		fail(err)
	}

	switch *engine {
	case "seq", "parallel":
	default:
		fail(fmt.Errorf("unknown -engine %q (want seq or parallel)", *engine))
	}

	var res backend.RunResult
	if *stream {
		if *engine == "parallel" {
			fail(fmt.Errorf("-engine parallel applies to materialized runs; -stream has its own pipeline"))
		}
		fmt.Printf("stream-simulating %s on %d processors...\n", k.Name(), cfg.TotalProcs())
		sys, err := backend.NewSystem(cfg)
		if err != nil {
			fail(err)
		}
		var opts []backend.StreamOption
		if h, ok := k.(workloads.EventHinter); ok {
			opts = append(opts, backend.WithEventHint(h.EventHint(cfg.TotalProcs())))
		}
		res, err = backend.StreamRun(sys, cfg.TotalProcs(), func(sink trace.Sink) error {
			return k.Run(cfg.TotalProcs(), sink)
		}, opts...)
		if err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("generating %s trace for %d processors...\n", k.Name(), cfg.TotalProcs())
		tr, err := workloads.GenerateTrace(k, cfg.TotalProcs())
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %d instructions, %d memory references, %d barriers/cpu\n",
			tr.Instructions(), tr.MemoryRefs(), tr.Streams[0].Barriers())
		if *engine == "parallel" {
			res, err = backend.SimulateParallel(tr, cfg, *workers)
		} else {
			res, err = backend.Simulate(tr, cfg)
		}
		if err != nil {
			fail(err)
		}
	}

	fmt.Printf("platform:  %s (%s, n=%d, N=%d, cache %s, mem %dMB, net %v)\n",
		cfg.Name, cfg.Kind, cfg.Procs, cfg.N, cfg.CacheDesc(), cfg.MemoryBytes>>20, cfg.Net)
	fmt.Printf("wall      = %.0f cycles\n", res.WallCycles)
	fmt.Printf("E(Instr)  = %.4f cycles = %.4g seconds at %g MHz\n", res.EInstr, res.Seconds, cfg.ClockMHz)
	fmt.Printf("avg T     = %.2f cycles/reference\n", res.AvgT)
	fmt.Printf("barriers  = %d (%.0f cycles waiting, %.3f cycles/instr)\n",
		res.Barriers, res.BarrierWaitCycles, res.BarrierWaitCycles/float64(res.Instructions))
	fmt.Println("served by:")
	for c := backend.ClassCacheHit; c <= backend.ClassDisk; c++ {
		// Deep-level classes only exist on multi-level hierarchies; hiding
		// them at zero keeps one-level output identical to earlier releases.
		if c.DeepOnly() && res.ClassShare[c] == 0 {
			continue
		}
		fmt.Printf("  %-14s %8.4f%%\n", c, res.ClassShare[c]*100)
	}
	fmt.Printf("coherence bus share = %.2f%%  (paper reports 2.1-7.2%% on SMPs)\n", res.CoherenceShare*100)
	if cfg.N > 1 {
		fmt.Printf("network utilization = %.2f%%\n", res.NetUtilization*100)
	}

	if *phases {
		fmt.Println("phase profile:")
		for _, p := range res.Phases {
			remote := p.Stats.ClassCounts[backend.ClassRemoteClean] + p.Stats.ClassCounts[backend.ClassRemoteDirty]
			fmt.Printf("  phase %3d: %12.0f cycles  %9d refs  %8d remote  barrier wait %10.0f\n",
				p.Index, p.Cycles(), p.Stats.Refs, remote, p.BarrierWait)
		}
	}
}
