// Command chc-advisor is the integrated design tool the paper's §7
// envisions: it chains the three supporting tools — trace collection, trace
// analysis (α, β, γ), and budget-constrained configuration generation —
// into one "timely and effective vehicle to support the design of cost
// effective parallel cluster computing".
//
// Given a workload (a named kernel, characterized on the fly, or paper
// Table 2 parameters) and a budget, it reports the workload class and §6
// principle, the optimal platform with runners-up, a machine-count
// scalability sweep for the winning cluster family, and resource
// sensitivities backing the upgrade rule.
//
// Usage:
//
//	chc-advisor -budget 5000 -workload Radix          # paper parameters
//	chc-advisor -budget 8000 -workload radix -measured
//	chc-advisor -budget 20000 -workload TPC-C -top 8
package main

import (
	"flag"
	"fmt"
	"os"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/experiments"
	"memhier/internal/machine"
	"memhier/internal/workloads"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc-advisor:", err)
	os.Exit(1)
}

func main() {
	var (
		budget       = flag.Float64("budget", 5000, "construction budget in dollars")
		workload     = flag.String("workload", "FFT", "workload name")
		workloadFile = flag.String("workload-file", "", "JSON workload description (overrides -workload)")
		measured     = flag.Bool("measured", false, "characterize the instrumented kernel instead of using paper parameters")
		top          = flag.Int("top", 5, "runners-up to print")
		delta        = flag.Float64("delta", 0, "coherence rate adjustment (default: paper's 0.124)")
	)
	flag.Parse()
	opts := core.Options{CoherenceAdjust: *delta}

	// Step 1-2 (paper §7 tools 1+2): obtain the workload parameters.
	var wl core.Workload
	if *workloadFile != "" {
		f, err := os.Open(*workloadFile)
		if err != nil {
			fail(err)
		}
		wl, err = core.ReadWorkload(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("reading %s: %w", *workloadFile, err))
		}
	} else if *measured {
		fmt.Printf("collecting and analyzing the %s address stream...\n", *workload)
		var c workloads.Characterization
		var err error
		wl, c, err = experiments.MeasuredWorkload(*workload)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  alpha=%.3f beta=%.2f gamma=%.3f kappa=%.2f footprint=%d lines (R2 %.3f)\n",
			c.Params.Alpha, c.Params.Beta, c.Params.Gamma, c.Conflict, c.Distinct, c.Fit.R2)
	} else {
		var err error
		wl, err = core.PaperWorkloadByName(*workload)
		if err != nil {
			fail(fmt.Errorf("%w (or pass -measured with a kernel name)", err))
		}
	}

	// Classification: the §6 principle.
	fmt.Printf("\nworkload class: %s\n", describeClass(wl))
	fmt.Printf("§6 principle:   %s\n", cost.Recommend(wl))

	// Step 3 (paper §7 tool 3): enumerate configurations under the budget.
	best, all, err := cost.Optimize(*budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\noptimal platform under $%.0f (%d feasible):\n", *budget, len(all))
	fmt.Printf("  %s — $%.0f, E(Instr) = %.3f cycles\n", best.Config.Name, best.Cost, best.EInstr)
	n := *top
	if n > len(all) {
		n = len(all)
	}
	for i := 1; i < n; i++ {
		s := all[i]
		fmt.Printf("  %2d. %-45s $%-6.0f E=%.3f\n", i+1, s.Config.Name, s.Cost, s.EInstr)
	}

	// Scalability of the winning family (how far adding machines helps).
	if best.Config.N >= 1 && best.Config.Kind != machine.SMP && best.Config.Net != machine.NetNone {
		pts, err := core.Scalability(best.Config, wl, opts, 16)
		if err == nil {
			fmt.Println("\nscaling the winner's machine count (ignoring budget):")
			for _, p := range pts {
				if p.N == 1 || p.N%2 == 0 {
					fmt.Printf("  N=%-3d E=%-9.3f speedup %.2fx efficiency %.2f\n",
						p.N, p.EInstr, p.Speedup, p.Efficiency)
				}
			}
			if opt, err := core.OptimalMachines(pts); err == nil {
				fmt.Printf("  best machine count: %d\n", opt.N)
			}
		}
	}

	// Sensitivities: what to upgrade first (the §6 rule, quantified).
	sens, err := core.Sensitivities(best.Config, wl, opts)
	if err == nil && len(sens) > 0 {
		fmt.Println("\nresource sensitivities of the winner (dE% per +1% resource):")
		for _, s := range sens {
			fmt.Printf("  %-16s %+0.4f\n", s.Resource, s.Elasticity)
		}
		if advice, err := cost.UpgradeAdvice(best.Config, wl, opts); err == nil {
			fmt.Printf("upgrade rule: %s\n", advice)
		}
	}
}

func describeClass(wl core.Workload) string {
	bound := "CPU bound (small gamma)"
	if wl.Locality.Gamma >= 0.35 {
		bound = "memory bound (large gamma)"
	}
	loc := "good locality (beta < 100)"
	if wl.Locality.Beta >= 1000 {
		loc = "very large beta"
	} else if wl.Locality.Beta >= 100 {
		loc = "poor locality (beta > 100)"
	}
	return bound + ", " + loc
}
