// Budgetplanner sweeps the construction budget for each paper workload and
// shows how the optimal platform changes — the crossover from clusters of
// workstations to SMPs that the paper's §6 principles describe.
package main

import (
	"fmt"
	"log"

	"memhier"
)

func main() {
	budgets := []float64{2000, 5000, 10000, 20000, 40000}
	wls := append(memhier.PaperWorkloads(), memhier.PaperTPCC())

	fmt.Printf("%-8s", "budget")
	for _, wl := range wls {
		fmt.Printf("  %-28s", wl.Name)
	}
	fmt.Println()

	for _, b := range budgets {
		fmt.Printf("$%-7.0f", b)
		for _, wl := range wls {
			best, _, err := memhier.Optimize(b, wl, memhier.ModelOptions{})
			if err != nil {
				fmt.Printf("  %-28s", "(infeasible)")
				continue
			}
			fmt.Printf("  %-28s", fmt.Sprintf("%s E=%.2f", shortName(best.Config), best.EInstr))
		}
		fmt.Println()
	}

	fmt.Println("\nthe paper's §6 classification of these workloads:")
	for _, wl := range wls {
		fmt.Printf("  %-6s -> %s\n", wl.Name, memhier.Recommend(wl))
	}

	// Sanity: the classifier and the optimizer should broadly agree for
	// Radix once the budget admits SMPs.
	radix, _ := memhier.PaperWorkload("Radix")
	best, _, err := memhier.Optimize(20000, radix, memhier.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRadix at $20,000 -> %s (classifier says: %s)\n",
		best.Config.Name, memhier.Recommend(radix))
}

func shortName(c memhier.Config) string {
	switch c.Kind {
	case memhier.SMP:
		return fmt.Sprintf("SMP n=%d", c.Procs)
	case memhier.ClusterWS:
		return fmt.Sprintf("%dxWS %v", c.N, c.Net)
	default:
		return fmt.Sprintf("%dxSMP%d %v", c.N, c.Procs, c.Net)
	}
}
