// Scalability sweeps cluster sizes for each paper workload — the
// "desktop-to-teraflop" question of the paper's introduction — and shows
// where adding machines stops paying, per network.
package main

import (
	"fmt"
	"log"

	"memhier"
)

func main() {
	nets := []memhier.NetworkKind{memhier.NetBus10, memhier.NetBus100, memhier.NetSwitch155}

	for _, wl := range memhier.PaperWorkloads() {
		fmt.Printf("== %s (alpha=%.2f beta=%.2f gamma=%.2f)\n",
			wl.Name, wl.Locality.Alpha, wl.Locality.Beta, wl.Locality.Gamma)
		for _, net := range nets {
			template := memhier.Config{
				Name: "ws", Kind: memhier.ClusterWS, N: 1, Procs: 1,
				CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: net, ClockMHz: 200,
			}
			pts, err := memhier.Scalability(template, wl, memhier.ModelOptions{}, 16)
			if err != nil {
				log.Fatal(err)
			}
			best := pts[0]
			for _, p := range pts {
				if p.EInstr < best.EInstr {
					best = p
				}
			}
			last := pts[len(pts)-1]
			fmt.Printf("  %-13s best N=%-3d (speedup %5.2fx, efficiency %4.2f); at N=%d speedup %5.2fx\n",
				net, best.N, best.Speedup, best.Efficiency, last.N, last.Speedup)
		}
	}

	fmt.Println("\nreading: with 1999 networks (a remote access costs 3,275-45,075 cycles),")
	fmt.Println("only EDGE — the best locality of the suite — profits from more machines,")
	fmt.Println("and only on the faster networks; the other kernels are network bound at")
	fmt.Println("any N. This is the memory-hierarchy-length versus network-cost trade-off")
	fmt.Println("the paper's conclusions emphasize, and why its §6 steers poor-locality")
	fmt.Println("workloads toward SMPs.")
}
