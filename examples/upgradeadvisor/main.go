// Upgradeadvisor reproduces the paper's third case study: given an
// existing cluster and a growing upgrade budget, decide what to buy first —
// memory, cache, a faster network, or more machines.
package main

import (
	"fmt"
	"log"
	"reflect"

	"memhier"
)

func main() {
	// The existing system: C7 — two workstations with 32 MB each on a
	// 10 Mb Ethernet (Table 4's smallest cluster).
	existing, err := memhier.ConfigByName("C7")
	if err != nil {
		log.Fatal(err)
	}

	for _, wl := range append(memhier.PaperWorkloads(), memhier.PaperTPCC()) {
		fmt.Printf("== %s (currently on %s)\n", wl.Name, existing.Name)
		for _, budget := range []float64{500, 1500, 3000, 6000} {
			plan, err := memhier.Upgrade(existing, budget, wl, memhier.ModelOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if reflect.DeepEqual(plan.To, plan.From) {
				fmt.Printf("  +$%-5.0f keep as is\n", budget)
				continue
			}
			fmt.Printf("  +$%-5.0f -> %-45s spend $%-5.0f speedup %5.2fx\n",
				budget, plan.To.Name, plan.UpgradeCost, plan.Speedup)
		}
	}
}
