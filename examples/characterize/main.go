// Characterize runs the full measurement pipeline on the repository's own
// instrumented kernels: execute the kernel, analyze its address stream for
// stack distances, fit the paper's locality curve, and print the resulting
// workload parameters next to the paper's published Table 2 values.
package main

import (
	"fmt"
	"log"

	"memhier"
)

func main() {
	paper := map[string][3]float64{
		"FFT":   {1.21, 103.26, 0.20},
		"LU":    {1.30, 90.27, 0.31},
		"Radix": {1.14, 120.84, 0.37},
		"EDGE":  {1.71, 85.03, 0.45},
	}

	fmt.Printf("%-7s %-38s %7s %10s %7s %7s | paper: alpha beta   gamma\n",
		"kernel", "problem", "alpha", "beta", "gamma", "R2")
	for _, k := range memhier.Kernels(false) {
		c, err := memhier.Characterize(k)
		if err != nil {
			log.Fatal(err)
		}
		p := paper[c.Workload]
		fmt.Printf("%-7s %-38s %7.3f %10.2f %7.3f %7.3f |        %4.2f  %7.2f %5.2f\n",
			c.Workload, c.Problem, c.Params.Alpha, c.Params.Beta, c.Params.Gamma,
			c.Fit.R2, p[0], p[1], p[2])
	}

	fmt.Println("\n(absolute values differ from the paper — different tracer, compiler")
	fmt.Println(" model and problem scale — but the structure agrees: Radix has the")
	fmt.Println(" worst scientific locality, and gamma rises FFT < LU < Radix < EDGE.)")
}
