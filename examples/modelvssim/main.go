// Modelvssim reproduces the paper's validation methodology on a single
// configuration: characterize a kernel, predict E(Instr) with the
// analytical model, then run the execution-driven simulator on the same
// trace and compare — the per-point version of Figures 2–4.
package main

import (
	"fmt"
	"log"

	"memhier"
)

func main() {
	// C5: the paper's 4-processor SMP, capacity-scaled 16x to match the
	// small problem sizes (see EXPERIMENTS.md on scaling).
	cfg, err := memhier.ConfigByName("C5")
	if err != nil {
		log.Fatal(err)
	}
	cfg, err = cfg.Scaled(16)
	if err != nil {
		log.Fatal(err)
	}

	for _, k := range memhier.Kernels(false) {
		// Line-granularity characterization: the simulator's caches work
		// in 64-byte lines, so the model must too.
		c, err := memhier.CharacterizeLines(k)
		if err != nil {
			log.Fatal(err)
		}
		wl := memhier.ModelWorkload(c)

		res, err := memhier.Evaluate(cfg, wl, memhier.ModelOptions{})
		if err != nil {
			log.Fatal(err)
		}

		tr, err := memhier.GenerateTrace(k, cfg.TotalProcs())
		if err != nil {
			log.Fatal(err)
		}
		sim, err := memhier.Simulate(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}

		diff := (res.EInstr - sim.EInstr) / sim.EInstr * 100
		fmt.Printf("%-6s model E(Instr) = %7.3f cycles, simulated = %7.3f cycles (%+.1f%%)\n",
			k.Name(), res.EInstr, sim.EInstr, diff)
	}
}
