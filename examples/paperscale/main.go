// Paperscale stream-simulates the paper's full-size problems — the runs
// that took the original authors "more than 20 minutes" each on an SGI —
// without materializing their multi-hundred-megabyte traces, then compares
// the analytical model against each result.
package main

import (
	"fmt"
	"log"
	"time"

	"memhier"
)

func main() {
	cfg, err := memhier.ConfigByName("C8") // 4 workstations, 100 Mb Ethernet
	if err != nil {
		log.Fatal(err)
	}

	// The paper's problem sizes, except LU at 256×256: the 512×512 run is
	// ~460M references and takes tens of minutes through the stack-distance
	// analyzer (feel free to bump it back).
	kernels := []memhier.Kernel{
		memhier.NewFFT(1 << 16),
		memhier.NewLU(256, 16),
		memhier.NewRadix(1<<20, 1024),
		memhier.NewEdge(128, 128, 4),
	}
	fmt.Printf("stream-simulating the paper-size suite on %s (this is the cheap way —\n", cfg.Name)
	fmt.Println("the traces would be hundreds of millions of events if materialized):")
	for _, k := range kernels {
		start := time.Now()
		sim, err := memhier.StreamSimulate(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		c, err := memhier.CharacterizeLines(k)
		if err != nil {
			log.Fatal(err)
		}
		wl := memhier.ModelWorkload(c)
		model, err := memhier.Evaluate(cfg, wl, memhier.ModelOptions{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("  %-6s %11d instrs  sim E=%8.3f cycles  model E=%8.3f  (%v wall)\n",
			k.Name(), sim.Instructions, sim.EInstr, model.EInstr, elapsed.Round(time.Millisecond))
	}
	fmt.Println("\n(the paper's §5.3: one analytic evaluation replaces each of these runs)")
}
