// Quickstart: evaluate the Du–Zhang analytical model for a catalog
// platform and a paper workload, and print where the cycles go.
package main

import (
	"fmt"
	"log"

	"memhier"
)

func main() {
	// The platform: C10 from the paper's Table 4 — four workstations on a
	// 155 Mb ATM switch.
	cfg, err := memhier.ConfigByName("C10")
	if err != nil {
		log.Fatal(err)
	}

	// The workload: FFT with the paper's Table 2 locality parameters.
	fft, ok := memhier.PaperWorkload("FFT")
	if !ok {
		log.Fatal("FFT missing from Table 2")
	}

	res, err := memhier.Evaluate(cfg, fft, memhier.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s (%v):\n", fft.Name, cfg.Name, cfg.Kind)
	fmt.Printf("  average memory access time T = %.1f cycles\n", res.T)
	fmt.Printf("  E(Instr) = %.3f cycles  (%.3g s/instruction at %g MHz)\n",
		res.EInstr, res.Seconds, cfg.ClockMHz)
	for _, lv := range res.Levels {
		fmt.Printf("  %-14s %6.2f%% of references, %8.1f cycles each\n",
			lv.Name, lv.MissFraction*100, lv.Contended)
	}

	// The same question the paper's §6 asks: what is the best platform for
	// this workload under a $5,000 budget?
	best, feasible, err := memhier.Optimize(5000, fft, memhier.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest $5,000 platform for %s: %s ($%.0f, E(Instr)=%.3f, %d candidates)\n",
		fft.Name, best.Config.Name, best.Cost, best.EInstr, len(feasible))
}
