package memhier

import (
	"bytes"
	"memhier/internal/core"
	"strings"
	"testing"
)

func TestFacadeModelRoundTrip(t *testing.T) {
	cfg, err := ConfigByName("C8")
	if err != nil {
		t.Fatal(err)
	}
	fft, ok := PaperWorkload("FFT")
	if !ok {
		t.Fatal("FFT missing")
	}
	res, err := Evaluate(cfg, fft, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EInstr <= 0 || res.T <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(SMPCatalog()) != 6 || len(WSCatalog()) != 5 || len(SMPClusterCatalog()) != 4 {
		t.Error("catalog sizes wrong")
	}
	if len(PaperWorkloads()) != 4 {
		t.Error("paper workloads wrong")
	}
	if PaperTPCC().Name != "TPC-C" {
		t.Error("TPC-C missing")
	}
	if _, err := ConfigByName("C99"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestFacadeKernelPipeline(t *testing.T) {
	k, err := KernelByName("lu", false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CharacterizeLines(k)
	if err != nil {
		t.Fatal(err)
	}
	wl := ModelWorkload(c)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Name: "t", Kind: SMP, N: 1, Procs: 2,
		CacheBytes: 16 << 10, MemoryBytes: 4 << 20, Net: NetNone, ClockMHz: 200}
	sim, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Evaluate(cfg, wl, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.EInstr <= 0 || model.EInstr <= 0 {
		t.Error("pipeline produced degenerate results")
	}
	// Item-granularity characterization also works through the facade.
	if _, err := Characterize(k); err != nil {
		t.Fatal(err)
	}
	if len(Kernels(false)) != 4 {
		t.Error("kernel suite wrong")
	}
	if _, err := KernelByName("nope", false); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFacadeOptimizeAndUpgrade(t *testing.T) {
	radix, _ := PaperWorkload("Radix")
	best, all, err := Optimize(5000, radix, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > 5000 || len(all) == 0 {
		t.Errorf("bad optimization outcome: %+v (%d feasible)", best, len(all))
	}
	existing, _ := ConfigByName("C7")
	plan, err := Upgrade(existing, 2000, radix, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Speedup < 1 {
		t.Errorf("upgrade slowed down: %+v", plan)
	}
	if DefaultCatalog().WSBase <= 0 {
		t.Error("catalog not priced")
	}
	if Recommend(radix).String() == "" {
		t.Error("no recommendation")
	}
}

func TestWriteReproductionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	var buf bytes.Buffer
	if err := WriteReproduction(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Figure 2", "Figure 3", "Figure 4",
		"Case 1", "Case 2", "Case 3", "4×", "principles", "cost of prediction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reproduction output missing %q", want)
		}
	}
}

func TestFacadeAnalysisAPIs(t *testing.T) {
	fft, _ := PaperWorkload("FFT")
	template := Config{Name: "ws", Kind: ClusterWS, N: 1, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: NetSwitch155, ClockMHz: 200}
	pts, err := Scalability(template, fft, ModelOptions{}, 8)
	if err != nil || len(pts) == 0 {
		t.Fatalf("Scalability: %v (%d points)", err, len(pts))
	}
	cfg := template
	cfg.N = 4
	sens, err := Sensitivities(cfg, fft, ModelOptions{})
	if err != nil || len(sens) < 2 {
		t.Fatalf("Sensitivities: %v (%d)", err, len(sens))
	}
	lu, _ := PaperWorkload("LU")
	mix, err := EvaluateMix(cfg, []core.MixComponent{
		{Workload: fft, Weight: 1}, {Workload: lu, Weight: 1},
	}, ModelOptions{})
	if err != nil || mix <= 0 {
		t.Fatalf("EvaluateMix: %v (%v)", err, mix)
	}
	k, err := KernelByName("radix", false)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh := MeasureSharing(tr, 1)
	if sh.RemoteShare <= 0 {
		t.Errorf("a 4-way radix sort shares data; got %+v", sh)
	}
}
